package zsampler

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/fn"
	"repro/internal/hh"
)

func TestEstimateSetupWordsScaling(t *testing.T) {
	p := DefaultParams(1<<20, 1)
	small := EstimateSetupWords(p, 2, 1<<20)
	big := EstimateSetupWords(p, 10, 1<<20)
	if big <= small {
		t.Fatal("setup cost must grow with server count")
	}
	// Explicit formula check: perZHH = (s−1)·reps·buckets·depth·width =
	// 1·3·8·4·16 = 1536; total = 1536·(1 + levels·repsPerLevel) = 13824.
	q := Params{
		Levels:       4,
		RepsPerLevel: 2,
		HH:           hh.ZParams{Reps: 3, Buckets: 8, B: 8, Sketch: hh.Params{Depth: 4, Width: 16}},
	}
	if got := EstimateSetupWords(q, 2, 1000); got != 13824 {
		t.Fatalf("EstimateSetupWords = %d, want 13824", got)
	}
}

func TestParamsForBudgetMonotone(t *testing.T) {
	const s, l = 10, 1 << 18
	prev := int64(-1)
	for _, budget := range []int64{1 << 30, 1 << 22, 1 << 18, 1 << 14, 1} {
		p := ParamsForBudget(budget, s, l, 7)
		cost := EstimateSetupWords(p, s, l)
		if prev >= 0 && cost > prev {
			t.Fatalf("cost not monotone in budget: %d after %d", cost, prev)
		}
		prev = cost
		if p.Seed != 7 {
			t.Fatal("seed not propagated")
		}
	}
}

func TestParamsForBudgetFitsWhenPossible(t *testing.T) {
	const s, l = 5, 1 << 16
	budget := int64(1 << 20)
	p := ParamsForBudget(budget, s, l, 1)
	if EstimateSetupWords(p, s, l) > budget {
		t.Fatal("chosen params exceed a satisfiable budget")
	}
}

// TestBudgetedEstimatorActualCostNearEstimate: the analytic estimate must
// track the measured sketch traffic (within the value-collection slack).
func TestBudgetedEstimatorActualCostNearEstimate(t *testing.T) {
	v := make([]float64, 4000)
	for j := range v {
		v[j] = float64(j%17) * 0.1
	}
	locals := makeLocals(v, 3, rand.New(rand.NewSource(5)))
	p := ParamsForBudget(1<<17, 3, len(v), 3)
	net := comm.NewNetwork(3)
	if _, err := BuildEstimator(context.Background(), net, locals, fn.Identity{}, p); err != nil {
		t.Fatal(err)
	}
	est := EstimateSetupWords(p, 3, len(v))
	actual := net.Words()
	// Actual = sketches + seeds + value collection; must be within 3× of
	// the estimate and never less than the sketch-only estimate by more
	// than the seed slack.
	if actual > 3*est {
		t.Fatalf("actual %d ≫ estimate %d", actual, est)
	}
}
