package zsampler

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/comm"
	"repro/internal/fn"
)

func TestDebugClassBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running: skipped in -short (CI runs the full suite)")
	}
	rng := rand.New(rand.NewSource(2))
	const l = 5000
	v := make([]float64, l)
	for j := range v {
		v[j] = rng.NormFloat64() * 0.01
	}
	for _, j := range []int{3, 999, 4321} {
		v[j] = 50
	}
	locals := makeLocals(v, 3, rng)
	net := comm.NewNetwork(3)
	z := fn.Identity{}
	est, err := BuildEstimator(context.Background(), net, locals, z, richParams(9))
	if err != nil {
		t.Fatal(err)
	}
	// True class sizes.
	eps := 0.5
	trueSizes := map[int]int{}
	trueContrib := map[int]float64{}
	for _, x := range v {
		zv := z.Z(x)
		if zv <= 0 {
			continue
		}
		ci := classIndex(zv, eps)
		trueSizes[ci]++
		trueContrib[ci] += zv
	}
	var idxs []int
	for _, c := range est.classes {
		idxs = append(idxs, c.idx)
	}
	sort.Ints(idxs)
	for _, c := range est.classes {
		t.Logf("class %3d: shat=%-10.4g weight=%-12.4g true_size=%-6d true_contrib=%-12.4g val=%.4g",
			c.idx, c.shat, c.weight, trueSizes[c.idx], trueContrib[c.idx], math.Pow(1.5, float64(c.idx)))
	}
	t.Logf("ZHat=%g truth=%g", est.ZHat(), trueZ(v, z))
}
