package zsampler

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/fn"
)

// TestSampleNegativeClassIndex is the regression test for the draw-failure
// bug behind the "Caltech-101(P=20) ratio 0.1" abort: the class-selection
// loop used picked == -1 as its FAIL sentinel, but -1 is a legitimate
// class index (any coordinate with z ∈ [1/(1+ε), 1) lands there — exactly
// where GM(p=20) concentrates nearly all its z-mass). Every draw hitting
// class -1 was treated as a FAIL: draws were silently skewed away from the
// dominant class and, with probability ≈ (mass of class -1)^MaxRetries per
// draw, the whole run aborted with ErrFailed.
func TestSampleNegativeClassIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	// All coordinates carry z = 0.81 ∈ [1/1.5, 1) ⇒ classIndex = -1 for
	// every recovered coordinate: the entire z-mass lives in class -1.
	v := make([]float64, 256)
	for j := range v {
		v[j] = 0.9
	}
	locals := makeLocals(v, 2, rng)
	net := comm.NewNetwork(2)
	est, err := BuildEstimator(context.Background(), net, locals, fn.Identity{}, richParams(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := classIndex(fn.Identity{}.Z(0.9), 0.5); got != -1 {
		t.Fatalf("test premise broken: classIndex = %d, want -1", got)
	}
	for i := 0; i < 100; i++ {
		if _, err := est.Sample(); err != nil {
			t.Fatalf("draw %d from all-class(-1) estimator: %v", i, err)
		}
	}
}

// TestFallbackLadderExactLocalDraw forces every weighted attempt to FAIL
// (overwhelming injected mass) and verifies the bottom rung of the ladder
// still produces valid draws instead of ErrFailed.
func TestFallbackLadderExactLocalDraw(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	v := make([]float64, 512)
	for j := range v {
		v[j] = rng.Float64() * 4
	}
	locals := makeLocals(v, 2, rng)
	net := comm.NewNetwork(2)
	est, err := BuildEstimator(context.Background(), net, locals, fn.Identity{}, richParams(9))
	if err != nil {
		t.Fatal(err)
	}
	// Swamp every class with injected mass: each weighted attempt now
	// lands in the injected share with overwhelming probability, so both
	// retry rungs exhaust and the exact local draw must take over.
	for _, c := range est.classes {
		est.injected[c.idx] = 1e12 * est.zhat
	}
	seen := make(map[uint64]bool)
	for i := 0; i < 50; i++ {
		j, err := est.Sample()
		if err != nil {
			t.Fatalf("draw %d: fallback ladder still failed: %v", i, err)
		}
		if _, ok := est.Value(j); !ok {
			t.Fatalf("draw %d returned unrecovered coordinate %d", i, j)
		}
		seen[j] = true
	}
	if len(seen) < 5 {
		t.Fatalf("exact local draw returned only %d distinct coordinates in 50 draws", len(seen))
	}
}

// TestExactLocalDrawEmptyList covers the true dead end: no recovered
// z-mass at all must still surface ErrFailed rather than spin or panic.
func TestExactLocalDrawEmptyList(t *testing.T) {
	e := &Estimator{
		z:        fn.Identity{},
		list:     map[uint64]float64{},
		members:  map[int][]uint64{},
		injected: map[int]float64{},
	}
	if _, err := e.exactLocalDraw(); err != ErrFailed {
		t.Fatalf("err = %v, want ErrFailed", err)
	}
}
