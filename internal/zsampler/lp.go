package zsampler

import (
	"context"
	"fmt"

	"repro/internal/comm"
	"repro/internal/fn"
	"repro/internal/hh"
)

// BuildLpEstimator configures the generalized estimator as a distributed
// ℓp sampler: coordinates of the implicit vector a = Σ_t a^t are sampled
// with probability ≈ |a_j|^p / ‖a‖_p^p, and ZHat estimates ‖a‖_p^p.
//
// This is the primitive of Jowhari–Sağlam–Tardos [14] and
// Monemizadeh–Woodruff [15] that Section VI-B invokes for the softmax
// application ("apply the ℓ_{2/p}-sampling technique of [14], [15] on the
// sum of the resulting matrices"); the paper's generalized sampler — and
// hence this implementation — strictly subsumes it, since z(x) = |x|^p
// satisfies property P exactly when 0 < p ≤ 2 (x²/z = |x|^{2−p} must be
// nondecreasing).
func BuildLpEstimator(ctx context.Context, net *comm.Network, locals []hh.Vec, p float64, params Params) (*Estimator, error) {
	if p <= 0 || p > 2 {
		return nil, fmt.Errorf("zsampler: ℓp sampling requires 0 < p ≤ 2 (got %g); beyond 2, z=|x|^p violates property P — the regime of the paper's Theorem 4 lower bound", p)
	}
	// fn.AbsPower{P: q} has z = |x|^{2q}, so q = p/2 yields z = |x|^p.
	return BuildEstimator(ctx, net, locals, fn.AbsPower{P: p / 2}, params)
}
