package zsampler

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/fn"
)

// TestWorkersDoNotChangeAnything is the determinism regression test for
// the concurrent runtime: building the estimator with a parallel level
// sweep must reproduce the sequential build exactly — the estimate, the
// recovered List, every communication tally and the full transcript.
func TestWorkersDoNotChangeAnything(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running: skipped in -short (CI runs the full suite)")
	}
	rng := rand.New(rand.NewSource(77))
	const l = 4000
	v := make([]float64, l)
	for j := range v {
		v[j] = rng.NormFloat64()
	}
	v[17] = 25
	v[2345] = -18

	type outcome struct {
		zhat    float64
		list    int
		classes map[int]float64
		words   int64
		msgs    int64
		byTag   map[string]int64
		byLink  map[[2]int]int64
		trace   []comm.Message
		draws   []uint64
	}
	build := func(workers int) outcome {
		locals := makeLocals(v, 4, rand.New(rand.NewSource(5)))
		net := comm.NewNetwork(4)
		net.EnableTrace()
		p := richParams(3)
		p.Workers = workers
		est, err := BuildEstimator(context.Background(), net, locals, fn.Identity{}, p)
		if err != nil {
			t.Fatal(err)
		}
		draws := make([]uint64, 25)
		for i := range draws {
			j, err := est.Sample()
			if err != nil {
				t.Fatal(err)
			}
			draws[i] = j
		}
		return outcome{
			zhat:    est.ZHat(),
			list:    est.ListSize(),
			classes: est.ClassSizes(),
			words:   net.Words(),
			msgs:    net.Messages(),
			byTag:   net.Breakdown(),
			byLink:  net.LinkBreakdown(),
			trace:   net.Transcript(),
			draws:   draws,
		}
	}

	sequential := build(1)
	for _, workers := range []int{2, 4, 16} {
		par := build(workers)
		if par.zhat != sequential.zhat {
			t.Fatalf("workers=%d: ZHat %g != %g", workers, par.zhat, sequential.zhat)
		}
		if par.list != sequential.list || !reflect.DeepEqual(par.classes, sequential.classes) {
			t.Fatalf("workers=%d: recovered state differs", workers)
		}
		if par.words != sequential.words || par.msgs != sequential.msgs {
			t.Fatalf("workers=%d: words/msgs %d/%d != %d/%d",
				workers, par.words, par.msgs, sequential.words, sequential.msgs)
		}
		if !reflect.DeepEqual(par.byTag, sequential.byTag) {
			t.Fatalf("workers=%d: per-tag tallies differ\n%v\n%v", workers, par.byTag, sequential.byTag)
		}
		if !reflect.DeepEqual(par.byLink, sequential.byLink) {
			t.Fatalf("workers=%d: per-link tallies differ", workers)
		}
		if !reflect.DeepEqual(par.trace, sequential.trace) {
			t.Fatalf("workers=%d: transcripts differ (%d vs %d messages)",
				workers, len(par.trace), len(sequential.trace))
		}
		if !reflect.DeepEqual(par.draws, sequential.draws) {
			t.Fatalf("workers=%d: sampled draws differ", workers)
		}
	}
}

// TestIngestionWorkersBitIdentical checks the row-parallel sketch
// ingestion path: HH sketches built with in-server ingestion workers must
// estimate identically to the sequential path.
func TestIngestionWorkersBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running: skipped in -short (CI runs the full suite)")
	}
	rng := rand.New(rand.NewSource(88))
	v := make([]float64, 3000)
	for j := range v {
		v[j] = rng.NormFloat64()
	}
	build := func(workers int) (float64, int64) {
		locals := makeLocals(v, 3, rand.New(rand.NewSource(9)))
		net := comm.NewNetwork(3)
		p := richParams(13)
		p.HH.Sketch.Workers = workers
		est, err := BuildEstimator(context.Background(), net, locals, fn.Identity{}, p)
		if err != nil {
			t.Fatal(err)
		}
		return est.ZHat(), net.Words()
	}
	seqZ, seqW := build(1)
	parZ, parW := build(4)
	if seqZ != parZ || seqW != parW {
		t.Fatalf("ingestion workers changed the result: %g/%d vs %g/%d", seqZ, seqW, parZ, parW)
	}
}
