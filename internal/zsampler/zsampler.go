// Package zsampler implements the paper's generalized sampler (Section V):
// given s servers holding local vectors a^t with implicit sum a = Σ_t a^t
// and a weight function z with property P, it samples coordinates j with
// probability ≈ z(a_j)/Z(a) where Z(a) = Σ_i z(a_i), and reports a (1±ε)
// approximation to Z(a).
//
// The construction follows Algorithms 2–4:
//
//   - Coordinates are conceptually split into classes
//     S_i(a) = {j : z(a_j) ∈ [(1+ε)^i, (1+ε)^{i+1})}.
//   - Z-HeavyHitters (package hh) recovers every coordinate that is
//     individually heavy in Z(a).
//   - Geometrically subsampled level sets S_ℓ = {j : g(j) ≤ 2^{-ℓ}·l}
//     shrink large classes until their survivors are heavy, at which point
//     per-level Z-HeavyHitters recovers them and 2^ℓ·|recovered| estimates
//     the class size (the Z-estimator, Algorithm 3).
//   - Sampling draws a class with probability ∝ ŝ_i(1+ε)^i, then a member
//     of the class by min-wise hashing (the Z-sampler, Algorithm 4).
//
// Parameters follow the paper's experimental practice of tuning the
// repetition counts, bucket counts and sketch widths to a communication
// budget rather than using the (astronomically large) constants from the
// analysis; see DESIGN.md §4.
package zsampler

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/comm"
	"repro/internal/fn"
	"repro/internal/hashing"
	"repro/internal/hh"
	"repro/internal/ops"
	"repro/internal/parallel"
)

// Params are the tunable knobs of the estimator/sampler pipeline.
type Params struct {
	// Eps controls the class granularity: class i covers z-values in
	// [(1+Eps)^i, (1+Eps)^{i+1}).
	Eps float64
	// Levels is the number of subsampling levels; 0 means ⌈log2 l⌉.
	Levels int
	// RepsPerLevel is the number of independent repetitions per level
	// (the paper's e loop in Algorithm 3).
	RepsPerLevel int
	// HH configures the inner Z-HeavyHitters invocations.
	HH hh.ZParams
	// CountLo/CountHi is the accepted window of recovered-survivor counts
	// for a level-based class size estimate 2^ℓ·count (the paper's
	// [4C²ε⁻²log l, 16C²ε⁻²log l) window, shrunk for practice).
	CountLo, CountHi int
	// Inject enables the coordinate-injection step for growing classes
	// (Section V-D). Injection is realized at the sampling layer: injected
	// mass makes a draw FAIL and retry, matching the paper's semantics
	// without rebuilding the estimator over the extended vector a′.
	Inject bool
	// InjectCap bounds the injected mass per class (the paper injects up
	// to poly(l) coordinates; a cap keeps memory finite).
	InjectCap int
	// MaxRetries bounds FAIL-retries per draw (paper: O(C·log l)).
	MaxRetries int
	// Seed drives all shared randomness.
	Seed int64
	// Workers fans the independent (repetition, level) Z-HeavyHitters
	// invocations out across a bounded worker pool (0 or 1 = sequential).
	// Each invocation runs against a forked accounting fabric that is
	// joined back in canonical order, so the estimator, its List and the
	// full communication transcript are identical at any worker count.
	Workers int
}

// DefaultParams returns a practical configuration for vector dimension l.
func DefaultParams(l int, seed int64) Params {
	return Params{
		Eps:          0.5,
		Levels:       0,
		RepsPerLevel: 1,
		HH:           hh.ZParams{Reps: 2, Buckets: 32, B: 32, Sketch: hh.Params{Depth: 4, Width: 128}},
		CountLo:      8,
		CountHi:      64,
		Inject:       false,
		InjectCap:    1 << 12,
		MaxRetries:   64,
		Seed:         seed,
	}
}

// Estimator is the output of the Z-estimator (Algorithm 3): the Ẑ estimate,
// per-class size estimates ŝ_i, and the List of recovered coordinates with
// their exact global values. It supports repeated sampling draws.
type Estimator struct {
	params  Params
	z       fn.ZFunc
	l       uint64
	zhat    float64
	classes []classInfo
	// list maps recovered coordinate → exact global value a_j.
	list map[uint64]float64
	// members groups recovered coordinates by class index.
	members map[int][]uint64
	// injected mass per class (sampling-layer realization of injection).
	injected map[int]float64
	rng      *rand.Rand
	drawSeq  uint64
}

type classInfo struct {
	idx    int     // class index i
	shat   float64 // ŝ_i
	weight float64 // ŝ_i·(1+ε)^i (+ injected mass · value)
}

// classIndex returns i with z ∈ [(1+ε)^i, (1+ε)^{i+1}).
func classIndex(zv, eps float64) int {
	return int(math.Floor(math.Log(zv) / math.Log1p(eps)))
}

// valueRound builds one value-collection round for coordinate j (line 6 /
// line 11 of Algorithm 3: "server 1 communicates with other servers to
// compute a_p"): the CP broadcasts the coordinate (one word per server)
// and every server replies with its local value (one word per server) —
// worker processes included, so the value really crosses the wire. The
// global value a_j = Σ_t a^t_j accumulates into *sum, which must already
// hold the CP's own contribution. Value rounds are mutually independent,
// so callers batch them through one pipelined RunRounds per recovery
// phase instead of paying a wire round-trip per coordinate.
func valueRound(locals []hh.Vec, j uint64, tag string, sum *float64) comm.Round {
	return comm.Round{
		Op:       ops.OpValue,
		Params:   ops.IndexParams(j),
		ReqTag:   tag,
		RespTag:  tag,
		RespKind: comm.KindValue,
		// One word per server: run the local executors inline rather than
		// spawning goroutines per recovered coordinate.
		Inline: true,
		Local: func(t int) ([]float64, error) {
			return []float64{locals[t].At(j)}, nil
		},
		OnResp: func(t int, payload []float64) error {
			if len(payload) != 1 {
				return fmt.Errorf("zsampler: value reply of %d words from server %d", len(payload), t)
			}
			*sum += payload[0]
			return nil
		},
	}
}

// BuildEstimator runs the Z-estimator protocol (Algorithm 3) over the
// implicit vector Σ_t locals[t], charging all traffic to net. ctx aborts
// the build between protocol rounds (and between the fanned-out
// (repetition, level) Z-HeavyHitters invocations).
func BuildEstimator(ctx context.Context, net *comm.Network, locals []hh.Vec, z fn.ZFunc, p Params) (*Estimator, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(locals) == 0 || locals[comm.CP] == nil {
		return nil, errors.New("zsampler: the CP's local share is required")
	}
	l := locals[comm.CP].Len()
	for _, lv := range locals {
		// Remote shares are nil on the coordinator; their dimension was
		// validated when they were installed on the worker.
		if lv != nil && lv.Len() != l {
			return nil, errors.New("zsampler: inconsistent vector dimensions")
		}
	}
	if l == 0 {
		return nil, errors.New("zsampler: empty vector")
	}
	if p.Eps <= 0 {
		return nil, fmt.Errorf("zsampler: eps must be positive, got %g", p.Eps)
	}
	levels := p.Levels
	if levels <= 0 {
		levels = int(math.Ceil(math.Log2(float64(l))))
		if levels < 1 {
			levels = 1
		}
	}

	est := &Estimator{
		params:   p,
		z:        z,
		l:        l,
		list:     make(map[uint64]float64),
		members:  make(map[int][]uint64),
		injected: make(map[int]float64),
		rng:      hashing.Seeded(hashing.DeriveSeed(p.Seed, 0xD0A11)),
	}

	// Recovered survivor sets per level: level -1 holds the globally-heavy
	// recoveries from the D step. Sets (not multisets) because the paper's
	// D_j is the union over repetitions — double-counting a coordinate
	// recovered by two repetitions would double every size estimate.
	recovered := make(map[int]map[uint64]struct{})
	// Value collection is deferred: record queues each newly recovered
	// coordinate (in first-appearance order, deduplicated against both the
	// collected list and the queue) and flushValues issues all queued
	// rounds through one pipelined RunRounds. The per-coordinate rounds,
	// their order and the ledger are exactly what per-recovery collectValue
	// calls produced — only the wire framing batches.
	var pending []uint64
	pendingSet := make(map[uint64]struct{})
	record := func(j uint64, level int) {
		if _, seen := est.list[j]; !seen {
			if _, queued := pendingSet[j]; !queued {
				pendingSet[j] = struct{}{}
				pending = append(pending, j)
			}
		}
		if recovered[level] == nil {
			recovered[level] = make(map[uint64]struct{})
		}
		recovered[level][j] = struct{}{}
	}
	flushValues := func() error {
		if len(pending) == 0 {
			return nil
		}
		sums := make([]float64, len(pending))
		rounds := make([]comm.Round, len(pending))
		for i, j := range pending {
			sums[i] = locals[comm.CP].At(j)
			rounds[i] = valueRound(locals, j, "zest/values", &sums[i])
		}
		if err := net.RunRounds(ctx, rounds); err != nil {
			return err
		}
		for i, j := range pending {
			est.list[j] = sums[i]
		}
		pending = pending[:0]
		clear(pendingSet)
		return nil
	}

	// Step 1 (Algorithm 3 line 5): global Z-HeavyHitters.
	d0, err := hh.ZHeavyHitters(ctx, net, locals, p.HH, hashing.DeriveSeed(p.Seed, 1), "zest/heavy")
	if err != nil {
		return nil, err
	}
	for _, j := range d0 {
		record(j, -1)
	}
	if err := flushValues(); err != nil {
		return nil, err
	}

	// Step 2 (lines 7–13): subsampled levels. The level-set hash g is
	// broadcast once; every server derives membership locally. The deepest
	// level each coordinate survives is memoized once (one hash evaluation
	// per coordinate) and shared by every level, repetition and server —
	// an O(l) precomputation that replaces O(l·levels·reps) hash work.
	gSeed := hashing.DeriveSeed(p.Seed, 2)
	net.BroadcastSeed(comm.CP, "zest/gseed", gSeed)
	g := hashing.SeededPolyHash(gSeed, 8)
	// Workers ≤ 0 stays sequential here (unlike the experiment sweep's
	// auto default): the estimator usually runs inside an already-parallel
	// outer layer, and nested auto fan-out would oversubscribe the pool.
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	maxLevel := make([]uint8, l)
	parallel.For(workers, int(l), func(i int) {
		j := uint64(i)
		// The same formula remote workers apply when they evaluate the
		// wire-expressible ops.LevelFilter, so the CP's precomputed table
		// and a worker's on-the-fly evaluation can never disagree.
		maxLevel[j] = uint8(ops.MaxLevelFromUnit(g.Unit(j), levels))
	})
	byLevelIdx := make([][]uint64, levels+1)
	for j := uint64(0); j < l; j++ {
		byLevelIdx[maxLevel[j]] = append(byLevelIdx[maxLevel[j]], j)
	}

	// The (repetition, level) Z-HeavyHitters invocations are mutually
	// independent: fan them out across the worker pool, each against a
	// forked fabric, then join the forks and record the recoveries in the
	// canonical (e, lev) order — the transcript and the recovery
	// bookkeeping (which dedupes value collection) replay exactly as a
	// sequential loop would have produced them.
	type levelTask struct{ e, lev int }
	var tasks []levelTask
	for e := 0; e < p.RepsPerLevel; e++ {
		for lev := 1; lev <= levels; lev++ {
			tasks = append(tasks, levelTask{e, lev})
		}
	}
	forks := make([]*comm.Network, len(tasks))
	djs := make([][]uint64, len(tasks))
	errs := make([]error, len(tasks))
	parallel.For(workers, len(tasks), func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err // canceled before this (repetition, level) cell started
			return
		}
		e, lev := tasks[i].e, tasks[i].lev
		lev8 := uint8(lev)
		keep := func(j uint64) bool { return maxLevel[j] >= lev8 }
		filt := &ops.LevelFilter{GSeed: gSeed, Levels: levels, MinLevel: lev}
		candidates := func(yield func(uint64)) {
			for ml := lev; ml <= levels; ml++ {
				for _, j := range byLevelIdx[ml] {
					yield(j)
				}
			}
		}
		seed := hashing.DeriveSeed(p.Seed, uint64(100+e*1000+lev))
		forks[i] = net.Fork()
		djs[i], errs[i] = hh.ZHeavyHittersFiltered(ctx, forks[i], locals, keep, filt, candidates, p.HH, seed, "zest/levels")
	})
	for i, task := range tasks {
		if errs[i] != nil {
			return nil, errs[i]
		}
		net.Join(forks[i])
		for _, j := range djs[i] {
			record(j, task.lev)
		}
	}
	if err := flushValues(); err != nil {
		return nil, err
	}

	// Step 3 (lines 6 and 12): class size estimates ŝ_i from the per-level
	// recovered counts, grouped by exact class of the recovered value.
	counts := make(map[int]map[int]int)
	for level, set := range recovered {
		for j := range set {
			zv := z.Z(est.list[j])
			if zv <= 0 {
				continue
			}
			ci := classIndex(zv, p.Eps)
			if counts[ci] == nil {
				counts[ci] = make(map[int]int)
			}
			counts[ci][level]++
		}
	}
	for ci, byLevel := range counts {
		shat := float64(byLevel[-1]) // exact recoveries from the heavy pass
		windowed := false
		for lev := 1; lev <= levels; lev++ {
			c := byLevel[lev]
			if c >= p.CountLo && c < p.CountHi {
				if estSize := math.Exp2(float64(lev)) * float64(c); estSize > shat {
					shat = estSize
					windowed = true
				}
			}
		}
		if !windowed {
			// Fallback outside the paper's window: prefer the deepest level
			// with at least CountLo/2 survivors; this biases small classes
			// down rather than wildly up, which only shifts mass toward
			// classes we can actually sample.
			for lev := levels; lev >= 1; lev-- {
				c := byLevel[lev]
				if c >= (p.CountLo+1)/2 && c < p.CountHi {
					if estSize := math.Exp2(float64(lev)) * float64(c); estSize > shat {
						shat = estSize
					}
					break
				}
			}
		}
		if shat > 0 {
			est.classes = append(est.classes, classInfo{idx: ci, shat: shat})
		}
	}
	sort.Slice(est.classes, func(a, b int) bool { return est.classes[a].idx < est.classes[b].idx })

	// Ẑ = Σ ŝ_i (1+ε)^i (line 14).
	for i := range est.classes {
		c := &est.classes[i]
		c.weight = c.shat * math.Pow(1+p.Eps, float64(c.idx))
		est.zhat += c.weight
	}

	// Group the List by class for min-wise within-class sampling.
	for j, v := range est.list {
		zv := z.Z(v)
		if zv <= 0 {
			continue
		}
		ci := classIndex(zv, p.Eps)
		est.members[ci] = append(est.members[ci], j)
	}
	for _, m := range est.members {
		sort.Slice(m, func(a, b int) bool { return m[a] < m[b] })
	}

	// Optional coordinate injection (Section V-D): growing classes receive
	// extra virtual mass so that under-covered small classes cause FAIL
	// (and a retry) instead of a silently skewed draw.
	if p.Inject && est.zhat > 0 {
		T := float64(levels)
		growThresh := est.zhat / (5 * T * T)
		for i := range est.classes {
			c := &est.classes[i]
			val := math.Pow(1+p.Eps, float64(c.idx))
			if val <= growThresh {
				if _, invertible := invertible(z, val); !invertible {
					continue // z⁻¹ undefined ⇒ the class is empty (paper)
				}
				count := math.Ceil(p.Eps * est.zhat / (5 * T * val))
				if count > float64(p.InjectCap) {
					count = float64(p.InjectCap)
				}
				est.injected[c.idx] = count * val
			}
		}
	}

	if est.zhat <= 0 {
		return nil, errors.New("zsampler: estimator found no mass (all-zero vector or sketches too small)")
	}
	return est, nil
}

func invertible(z fn.ZFunc, y float64) (float64, bool) {
	x := z.Inverse(y)
	return x, !math.IsNaN(x)
}

// ZHat returns the estimate of Z(a) = Σ_j z(a_j).
func (e *Estimator) ZHat() float64 { return e.zhat }

// ListSize returns the number of recovered coordinates.
func (e *Estimator) ListSize() int { return len(e.list) }

// ClassSizes returns the per-class size estimates ŝ_i keyed by class index.
func (e *Estimator) ClassSizes() map[int]float64 {
	out := make(map[int]float64, len(e.classes))
	for _, c := range e.classes {
		out[c.idx] = c.shat
	}
	return out
}

// Value returns the exact recovered value of a recovered coordinate.
func (e *Estimator) Value(j uint64) (float64, bool) {
	v, ok := e.list[j]
	return v, ok
}

// Prob returns the sampler's nominal probability of producing coordinate j
// in one successful draw: z(a_j)/Ẑ. This is the Q̂ that Algorithm 1 scales
// by; the paper shows a (1±γ) multiplicative error here is harmless
// (Lemma 3).
func (e *Estimator) Prob(value float64) float64 {
	zv := e.z.Z(value)
	if e.zhat <= 0 {
		return 0
	}
	return zv / e.zhat
}

// ErrFailed is returned when every rung of the draw fallback ladder is
// exhausted — which requires the recovered List to carry no positive
// z-mass at all (an estimator in that state is normally rejected at build
// time already).
var ErrFailed = errors.New("zsampler: draw failed after retries")

// Sample performs one Z-sampler draw (Algorithm 4): pick class i* with
// probability ∝ ŝ_i(1+ε)^i (plus injected mass), then return the member of
// List ∩ S_i* minimizing a fresh min-wise hash. Injected mass triggers a
// retry, up to MaxRetries.
//
// Instead of surfacing ErrFailed when the retry budget runs out, the draw
// degrades along a budget ladder: first the retry budget is escalated 8×
// (paper: the FAIL probability per attempt is a constant, so a deeper
// budget drives the failure probability down exponentially); if even that
// fails — possible when injected mass dominates a heavily skewed class
// layout — the draw falls back to an exact local draw over the recovered
// List, which cannot FAIL.
func (e *Estimator) Sample() (uint64, error) {
	if j, ok := e.trySample(e.params.MaxRetries); ok {
		return j, nil
	}
	if j, ok := e.trySample(8 * e.params.MaxRetries); ok {
		return j, nil
	}
	return e.exactLocalDraw()
}

// trySample attempts up to budget weighted class draws (Algorithm 4 as
// written). The second return is false when every attempt FAILed.
func (e *Estimator) trySample(budget int) (uint64, bool) {
	total := e.zhat
	for _, inj := range e.injected {
		total += inj
	}
	for attempt := 0; attempt < budget; attempt++ {
		x := e.rng.Float64() * total
		// An explicit hit flag: class indices are signed (class i covers
		// z-values in [(1+ε)^i, (1+ε)^{i+1}), so z < 1 means i < 0) and no
		// index value can double as the FAIL sentinel.
		hit := false
		var members []uint64
		for _, c := range e.classes {
			w := c.weight + e.injected[c.idx]
			if x < w {
				// Landing inside the injected share of the class is a FAIL.
				if x < c.weight {
					hit = true
					members = e.members[c.idx]
				}
				break
			}
			x -= w
		}
		if !hit || len(members) == 0 {
			continue // FAIL: injected mass, empty class or roundoff tail
		}
		// Min-wise hashing with a per-draw hash g′ (fresh seed per draw)
		// picks a near-uniform member of the recovered class.
		e.drawSeq++
		gp := hashing.PairwiseHash(hashing.Seeded(hashing.DeriveSeed(e.params.Seed, 0xABCD0000+e.drawSeq)))
		best := members[0]
		bestV := gp.Eval(best)
		for _, j := range members[1:] {
			if v := gp.Eval(j); v < bestV {
				best, bestV = j, v
			}
		}
		return best, true
	}
	return 0, false
}

// exactLocalDraw is the bottom rung of the draw fallback ladder: draw a
// recovered coordinate with exact probability z(a_j)/Σ_List z(a_j). The
// values were already collected during estimation, so this is entirely
// local to the CP, charges nothing, and cannot land on injected mass. It
// trades the class-size reweighting for guaranteed progress — acceptable
// precisely because it only runs after 9·MaxRetries weighted attempts
// FAILed, where erroring out used to abort whole experiment sweeps.
func (e *Estimator) exactLocalDraw() (uint64, error) {
	classes := make([]int, 0, len(e.members))
	for ci := range e.members {
		classes = append(classes, ci)
	}
	sort.Ints(classes)
	var total float64
	for _, ci := range classes {
		for _, j := range e.members[ci] {
			total += e.z.Z(e.list[j])
		}
	}
	if total <= 0 || math.IsInf(total, 0) || math.IsNaN(total) {
		return 0, ErrFailed
	}
	x := e.rng.Float64() * total
	var last uint64
	found := false
	for _, ci := range classes {
		for _, j := range e.members[ci] {
			w := e.z.Z(e.list[j])
			if w <= 0 {
				continue
			}
			last, found = j, true
			if x < w {
				return j, nil
			}
			x -= w
		}
	}
	if found {
		return last, nil // roundoff tail lands on the final member
	}
	return 0, ErrFailed
}
