package zsampler

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/fn"
	"repro/internal/hh"
)

// makeLocals splits a global vector additively across s servers.
func makeLocals(v []float64, s int, rng *rand.Rand) []hh.Vec {
	parts := make([][]float64, s)
	for t := range parts {
		parts[t] = make([]float64, len(v))
	}
	for j, val := range v {
		var acc float64
		for t := 0; t < s-1; t++ {
			sh := rng.NormFloat64() * 0.05
			parts[t][j] = sh
			acc += sh
		}
		parts[s-1][j] = val - acc
	}
	out := make([]hh.Vec, s)
	for t := range parts {
		out[t] = hh.DenseVec(parts[t])
	}
	return out
}

func trueZ(v []float64, z fn.ZFunc) float64 {
	var s float64
	for _, x := range v {
		s += z.Z(x)
	}
	return s
}

func richParams(seed int64) Params {
	return Params{
		Eps:          0.5,
		RepsPerLevel: 2,
		HH:           hh.ZParams{Reps: 3, Buckets: 32, B: 32, Sketch: hh.Params{Depth: 5, Width: 128}},
		CountLo:      8,
		CountHi:      64,
		MaxRetries:   64,
		Seed:         seed,
	}
}

func TestClassIndex(t *testing.T) {
	eps := 0.5
	// z ∈ [1.5^i, 1.5^{i+1}) ⇒ class i.
	cases := []struct {
		z    float64
		want int
	}{{1, 0}, {1.4, 0}, {1.5, 1}, {2.25, 2}, {0.9, -1}, {0.7, -1}}
	for _, c := range cases {
		if got := classIndex(c.z, eps); got != c.want {
			t.Errorf("classIndex(%g) = %d, want %d", c.z, got, c.want)
		}
	}
}

func TestEstimatorZHatPowerLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running: skipped in -short (CI runs the full suite)")
	}
	rng := rand.New(rand.NewSource(1))
	const l = 20000
	v := make([]float64, l)
	for j := range v {
		// Power-law magnitudes spanning several classes.
		v[j] = math.Pow(rng.Float64(), 2) * 10
	}
	locals := makeLocals(v, 4, rng)
	net := comm.NewNetwork(4)
	z := fn.Identity{}
	est, err := BuildEstimator(context.Background(), net, locals, z, richParams(7))
	if err != nil {
		t.Fatal(err)
	}
	truth := trueZ(v, z)
	rel := math.Abs(est.ZHat()-truth) / truth
	t.Logf("ZHat = %g, truth = %g, rel err = %.3f, list = %d, words = %d",
		est.ZHat(), truth, rel, est.ListSize(), net.Words())
	if rel > 0.5 {
		t.Fatalf("ZHat relative error %.3f too large", rel)
	}
}

func TestEstimatorZHatFewHeavy(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running: skipped in -short (CI runs the full suite)")
	}
	// All the mass in a handful of coordinates: the heavy path (D) must
	// carry the estimate.
	rng := rand.New(rand.NewSource(2))
	const l = 5000
	v := make([]float64, l)
	for j := range v {
		v[j] = rng.NormFloat64() * 0.01
	}
	for _, j := range []int{3, 999, 4321} {
		v[j] = 50
	}
	locals := makeLocals(v, 3, rng)
	net := comm.NewNetwork(3)
	z := fn.Identity{}
	est, err := BuildEstimator(context.Background(), net, locals, z, richParams(9))
	if err != nil {
		t.Fatal(err)
	}
	truth := trueZ(v, z)
	if rel := math.Abs(est.ZHat()-truth) / truth; rel > 0.5 {
		t.Fatalf("ZHat rel err %.3f (ZHat=%g truth=%g)", rel, est.ZHat(), truth)
	}
	for _, j := range []uint64{3, 999, 4321} {
		if _, ok := est.Value(j); !ok {
			t.Fatalf("heavy coordinate %d not in List", j)
		}
	}
}

func TestEstimatorBoundedZ(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running: skipped in -short (CI runs the full suite)")
	}
	// Huber-style bounded z: many saturated coordinates.
	rng := rand.New(rand.NewSource(3))
	const l = 8000
	v := make([]float64, l)
	for j := range v {
		if j%10 == 0 {
			v[j] = 100 + rng.Float64() // saturated: z = K²
		} else {
			v[j] = rng.NormFloat64() * 0.02
		}
	}
	locals := makeLocals(v, 4, rng)
	net := comm.NewNetwork(4)
	z := fn.Huber{K: 5}
	est, err := BuildEstimator(context.Background(), net, locals, z, richParams(11))
	if err != nil {
		t.Fatal(err)
	}
	truth := trueZ(v, z)
	if rel := math.Abs(est.ZHat()-truth) / truth; rel > 0.5 {
		t.Fatalf("bounded-z ZHat rel err %.3f (ZHat=%g truth=%g)", rel, est.ZHat(), truth)
	}
}

// TestSamplerDistribution draws many samples and checks the empirical
// distribution against z(a_j)/Z(a) for a vector with a few dominant
// coordinates (where per-coordinate frequencies are statistically
// meaningful).
func TestSamplerDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running: skipped in -short (CI runs the full suite)")
	}
	rng := rand.New(rand.NewSource(4))
	const l = 2000
	v := make([]float64, l)
	for j := range v {
		v[j] = rng.NormFloat64() * 0.05
	}
	dominant := map[uint64]float64{10: 40, 500: 20, 1500: 28}
	for j, val := range dominant {
		v[j] = val
	}
	locals := makeLocals(v, 3, rng)
	net := comm.NewNetwork(3)
	z := fn.Identity{}
	est, err := BuildEstimator(context.Background(), net, locals, z, richParams(13))
	if err != nil {
		t.Fatal(err)
	}
	truth := trueZ(v, z)
	const draws = 3000
	counts := make(map[uint64]int)
	for i := 0; i < draws; i++ {
		j, err := est.Sample()
		if err != nil {
			t.Fatal(err)
		}
		counts[j]++
	}
	for j, val := range dominant {
		want := val * val / truth
		got := float64(counts[j]) / draws
		if got < want/2 || got > want*2 {
			t.Errorf("coordinate %d: empirical %.3f, want ≈ %.3f", j, got, want)
		}
	}
}

func TestProbReportsZShare(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := make([]float64, 3000)
	for j := range v {
		v[j] = rng.NormFloat64()
	}
	locals := makeLocals(v, 2, rng)
	net := comm.NewNetwork(2)
	z := fn.Identity{}
	est, err := BuildEstimator(context.Background(), net, locals, z, richParams(15))
	if err != nil {
		t.Fatal(err)
	}
	// Prob must be z(value)/ZHat exactly.
	p := est.Prob(2.0)
	if math.Abs(p-4/est.ZHat()) > 1e-12 {
		t.Fatalf("Prob(2) = %g, want %g", p, 4/est.ZHat())
	}
}

func TestEstimatorErrors(t *testing.T) {
	net := comm.NewNetwork(2)
	if _, err := BuildEstimator(context.Background(), net, nil, fn.Identity{}, richParams(1)); err == nil {
		t.Fatal("no servers accepted")
	}
	locals := []hh.Vec{hh.DenseVec{}, hh.DenseVec{}}
	if _, err := BuildEstimator(context.Background(), net, locals, fn.Identity{}, richParams(1)); err == nil {
		t.Fatal("empty vector accepted")
	}
	mis := []hh.Vec{hh.DenseVec{1}, hh.DenseVec{1, 2}}
	if _, err := BuildEstimator(context.Background(), net, mis, fn.Identity{}, richParams(1)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	bad := richParams(1)
	bad.Eps = 0
	if _, err := BuildEstimator(context.Background(), net, []hh.Vec{hh.DenseVec{1}, hh.DenseVec{0}}, fn.Identity{}, bad); err == nil {
		t.Fatal("eps=0 accepted")
	}
	// All-zero vector: no mass.
	zero := []hh.Vec{hh.DenseVec(make([]float64, 50)), hh.DenseVec(make([]float64, 50))}
	if _, err := BuildEstimator(context.Background(), net, zero, fn.Identity{}, richParams(1)); err == nil {
		t.Fatal("zero vector accepted")
	}
}

func TestClassSizesRoughlyRight(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running: skipped in -short (CI runs the full suite)")
	}
	rng := rand.New(rand.NewSource(6))
	const l = 10000
	v := make([]float64, l)
	// One big class: 2000 coordinates with z(v)=1 (class 0 for eps=0.5).
	for j := 0; j < 2000; j++ {
		v[j] = 1.1
	}
	for j := 2000; j < l; j++ {
		v[j] = rng.NormFloat64() * 0.001
	}
	locals := makeLocals(v, 2, rng)
	net := comm.NewNetwork(2)
	est, err := BuildEstimator(context.Background(), net, locals, fn.Identity{}, richParams(17))
	if err != nil {
		t.Fatal(err)
	}
	ci := classIndex(1.1*1.1, 0.5)
	got := est.ClassSizes()[ci]
	if got < 500 || got > 8000 {
		t.Fatalf("class %d size estimate %g, want ≈ 2000 (sizes: %v)", ci, got, est.ClassSizes())
	}
}

func TestInjectionFailsGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := make([]float64, 1000)
	for j := range v {
		v[j] = rng.Float64() * 5
	}
	locals := makeLocals(v, 2, rng)
	net := comm.NewNetwork(2)
	p := richParams(19)
	p.Inject = true
	p.InjectCap = 64
	est, err := BuildEstimator(context.Background(), net, locals, fn.Identity{}, p)
	if err != nil {
		t.Fatal(err)
	}
	// Sampling must still succeed (retries absorb injected mass).
	for i := 0; i < 50; i++ {
		if _, err := est.Sample(); err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(100000, 42)
	if p.Seed != 42 || p.Eps <= 0 || p.HH.B <= 0 {
		t.Fatalf("default params %+v", p)
	}
}

func TestSampleDeterministicGivenSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running: skipped in -short (CI runs the full suite)")
	}
	rng := rand.New(rand.NewSource(8))
	v := make([]float64, 500)
	for j := range v {
		v[j] = rng.NormFloat64()
	}
	build := func() []uint64 {
		locals := makeLocals(v, 2, rand.New(rand.NewSource(99)))
		net := comm.NewNetwork(2)
		est, err := BuildEstimator(context.Background(), net, locals, fn.Identity{}, richParams(21))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, 20)
		for i := range out {
			j, err := est.Sample()
			if err != nil {
				t.Fatal(err)
			}
			out[i] = j
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not reproducible for fixed seed")
		}
	}
}

func TestLpEstimatorValidation(t *testing.T) {
	net := comm.NewNetwork(2)
	locals := makeLocals([]float64{1, 2, 3}, 2, rand.New(rand.NewSource(1)))
	if _, err := BuildLpEstimator(context.Background(), net, locals, 0, richParams(1)); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := BuildLpEstimator(context.Background(), net, locals, 3, richParams(1)); err == nil {
		t.Fatal("p=3 accepted (property P violated)")
	}
}

// TestL1SamplerDistribution checks ℓ1 sampling: dominant coordinates are
// drawn proportionally to |a_j| (not |a_j|²).
func TestL1SamplerDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running: skipped in -short (CI runs the full suite)")
	}
	rng := rand.New(rand.NewSource(31))
	const l = 1500
	v := make([]float64, l)
	for j := range v {
		v[j] = rng.NormFloat64() * 0.02
	}
	v[7] = 60
	v[800] = -30 // sign must not matter for |x|^1
	locals := makeLocals(v, 3, rng)
	net := comm.NewNetwork(3)
	est, err := BuildLpEstimator(context.Background(), net, locals, 1, richParams(33))
	if err != nil {
		t.Fatal(err)
	}
	var l1 float64
	for _, x := range v {
		l1 += math.Abs(x)
	}
	if rel := math.Abs(est.ZHat()-l1) / l1; rel > 0.5 {
		t.Fatalf("‖a‖₁ estimate rel err %.3f (ZHat=%g truth=%g)", rel, est.ZHat(), l1)
	}
	const draws = 2000
	c7, c800 := 0, 0
	for i := 0; i < draws; i++ {
		j, err := est.Sample()
		if err != nil {
			t.Fatal(err)
		}
		switch j {
		case 7:
			c7++
		case 800:
			c800++
		}
	}
	// Under ℓ1, coordinate 7 should appear ≈ 2× as often as 800 (60 vs 30),
	// NOT 4× as ℓ2 would give.
	ratio := float64(c7) / float64(c800)
	if ratio < 1.2 || ratio > 3.3 {
		t.Fatalf("ℓ1 draw ratio %0.2f (c7=%d c800=%d), want ≈ 2", ratio, c7, c800)
	}
	wantShare7 := 60 / l1
	gotShare7 := float64(c7) / draws
	if gotShare7 < wantShare7/2 || gotShare7 > wantShare7*2 {
		t.Fatalf("coordinate 7 share %.3f, want ≈ %.3f", gotShare7, wantShare7)
	}
}
