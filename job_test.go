package repro

// Job-engine tests: the multi-tenant determinism contract (concurrent
// Submits bit-identical to sequential runs, over both transports), share
// caching, admission control, cancellation, and the Close regression
// gates.

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/matrix"
)

// jobShares builds a deterministic additive split for s servers.
func jobShares(seed int64, n, d, s int) []*Matrix {
	rng := rand.New(rand.NewSource(seed))
	M := lowRankMatrix(rng, n, d, 3, 0.2)
	return splitMatrix(M, s, rng)
}

// tcpCluster brings up a TCP cluster with in-goroutine workers.
func tcpCluster(t *testing.T, s int) *Cluster {
	t.Helper()
	c, err := ListenCluster(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < s; i++ {
		go func() {
			if err := JoinWorker(testCtx(5*time.Second), c.Addr()); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	if err := c.AwaitWorkers(testCtx(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	return c
}

// jobFingerprint is the per-job observable the determinism gate compares:
// the complete per-job ledger plus the protocol outcome.
type jobFingerprint struct {
	words int64
	bytes int64
	tags  map[string]int64
	rows  []int
	proj  *Matrix
}

func fingerprintResult(res *Result) jobFingerprint {
	return jobFingerprint{
		words: res.Words, bytes: res.Bytes, tags: res.Breakdown,
		rows: res.SampledRows, proj: res.Projection,
	}
}

// runJobs submits k jobs (all with the same Options — seeds derive from
// the job ids) on a cluster whose engine runs conc jobs concurrently, and
// returns the per-job fingerprints in job order.
func runJobs(t *testing.T, c *Cluster, k, conc int) []jobFingerprint {
	t.Helper()
	if err := c.ConfigureEngine(EngineConfig{MaxConcurrent: conc}); err != nil {
		t.Fatal(err)
	}
	jobs := make([]*Job, k)
	for i := range jobs {
		j, err := c.Submit(context.Background(), Identity(), Options{K: 3, Rows: 20, Seed: 4242})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	out := make([]jobFingerprint, k)
	for i, j := range jobs {
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", j.ID(), err)
		}
		if res.JobID != j.ID() {
			t.Fatalf("result job id %d, want %d", res.JobID, j.ID())
		}
		out[i] = fingerprintResult(res)
	}
	return out
}

// TestConcurrentSubmitsMatchSequentialMem: K parallel jobs on one
// in-process cluster must produce per-job transcripts (words, bytes,
// tags), sampled rows and projections bit-identical to the same (seed,
// jobID)s run one at a time.
func TestConcurrentSubmitsMatchSequentialMem(t *testing.T) {
	const s, k = 3, 6
	shares := jobShares(11, 90, 8, s)

	seq, err := NewCluster(s)
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	if err := seq.SetLocalData(shares); err != nil {
		t.Fatal(err)
	}
	want := runJobs(t, seq, k, 1)

	par, err := NewCluster(s)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	if err := par.SetLocalData(shares); err != nil {
		t.Fatal(err)
	}
	got := runJobs(t, par, k, k)

	compareFingerprints(t, want, got)
}

// TestConcurrentSubmitsMatchSequentialTCP is the same gate over a real
// TCP worker fleet: concurrent sessions interleave on the worker
// connections, yet every per-job ledger must match its sequential twin.
func TestConcurrentSubmitsMatchSequentialTCP(t *testing.T) {
	const s, k = 3, 5
	shares := jobShares(12, 70, 8, s)

	seq := tcpCluster(t, s)
	defer seq.Close()
	if err := seq.SetLocalData(shares); err != nil {
		t.Fatal(err)
	}
	want := runJobs(t, seq, k, 1)

	par := tcpCluster(t, s)
	defer par.Close()
	if err := par.SetLocalData(shares); err != nil {
		t.Fatal(err)
	}
	got := runJobs(t, par, k, k)

	compareFingerprints(t, want, got)
}

func compareFingerprints(t *testing.T, want, got []jobFingerprint) {
	t.Helper()
	for i := range want {
		if want[i].words != got[i].words || want[i].bytes != got[i].bytes {
			t.Fatalf("job %d ledger drifted: sequential %d words/%d bytes, concurrent %d/%d",
				i+1, want[i].words, want[i].bytes, got[i].words, got[i].bytes)
		}
		if !reflect.DeepEqual(want[i].tags, got[i].tags) {
			t.Fatalf("job %d per-tag words drifted:\nsequential %v\nconcurrent %v", i+1, want[i].tags, got[i].tags)
		}
		if !reflect.DeepEqual(want[i].rows, got[i].rows) {
			t.Fatalf("job %d sampled rows drifted", i+1)
		}
		if !want[i].proj.Equalf(got[i].proj, 0) {
			t.Fatalf("job %d projection drifted", i+1)
		}
	}
}

// TestJobsSeeIndependentSeeds: jobs submitted with identical Options must
// still draw independently (their seeds derive from the job ids).
func TestJobsSeeIndependentSeeds(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetLocalData(jobShares(13, 80, 6, 2)); err != nil {
		t.Fatal(err)
	}
	a, err := c.Submit(context.Background(), Identity(), Options{K: 2, Rows: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(context.Background(), Identity(), Options{K: 2, Rows: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ra.SampledRows, rb.SampledRows) {
		t.Fatal("two jobs with the same Options drew identical rows — per-job seed derivation is broken")
	}
}

// TestShareCacheZeroTrafficOnRepeatedInstall: re-installing the same data
// on a TCP cluster must move zero share-installation traffic, and a
// repeated query against the cached dataset must still run.
func TestShareCacheZeroTrafficOnRepeatedInstall(t *testing.T) {
	const s = 3
	shares := jobShares(14, 40, 6, s)
	c := tcpCluster(t, s)
	defer c.Close()

	if err := c.SetLocalData(shares); err != nil {
		t.Fatal(err)
	}
	frames := c.coord.InstallFrames()
	if frames == 0 {
		t.Fatal("first install moved no frames")
	}
	// Same content again — by auto id (SetLocalData) and by explicit id.
	if err := c.SetLocalData(shares); err != nil {
		t.Fatal(err)
	}
	if got := c.coord.InstallFrames(); got != frames {
		t.Fatalf("repeated SetLocalData moved %d install frames, want 0", got-frames)
	}
	res, err := c.PCA(context.Background(), Identity(), Options{K: 2, Rows: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Words <= 0 {
		t.Fatal("query against cached dataset charged nothing")
	}
	if got := c.coord.InstallFrames(); got != frames {
		t.Fatalf("query re-installed shares: %d extra frames", got-frames)
	}
}

// TestNamedDatasets: two datasets installed side by side, jobs routed by
// Options.Dataset, listings report both.
func TestNamedDatasets(t *testing.T) {
	const s = 2
	c, err := NewCluster(s)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a := jobShares(15, 60, 6, s)
	b := jobShares(16, 50, 5, s)
	if err := c.InstallDataset(context.Background(), "alpha", matrix.AsMats(a)); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallDataset(context.Background(), "beta", matrix.AsMats(b)); err != nil {
		t.Fatal(err)
	}
	infos := c.Datasets()
	if len(infos) != 2 || infos[0].ID != "alpha" || infos[1].ID != "beta" || !infos[1].Active {
		t.Fatalf("dataset listing wrong: %+v", infos)
	}
	ja, err := c.Submit(context.Background(), Identity(), Options{K: 2, Rows: 10, Dataset: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := ja.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ra.Projection.Rows() != 6 {
		t.Fatalf("alpha job ran on the wrong dataset: projection %dx%d", ra.Projection.Rows(), ra.Projection.Cols())
	}
	jb, err := c.Submit(context.Background(), Identity(), Options{K: 2, Rows: 10}) // active = beta
	if err != nil {
		t.Fatal(err)
	}
	rb, err := jb.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rb.Projection.Rows() != 5 {
		t.Fatalf("active-dataset job ran on the wrong dataset: projection %dx%d", rb.Projection.Rows(), rb.Projection.Cols())
	}
	if _, err := c.Submit(context.Background(), Identity(), Options{K: 2, Dataset: "gamma"}); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset: %v", err)
	}
	if err := c.InstallDataset(context.Background(), "alpha", matrix.AsMats(b)); !errors.Is(err, ErrDatasetConflict) {
		t.Fatalf("conflicting reinstall: %v", err)
	}
}

// TestAdmissionControl: a full queue rejects with ErrJobQueueFull instead
// of blocking, and queued jobs can be canceled.
func TestAdmissionControl(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetLocalData(jobShares(17, 120, 10, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.ConfigureEngine(EngineConfig{MaxConcurrent: 1, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	// Saturate: 1 running (eventually) + 2 queued; more must bounce.
	// Submit enough that regardless of runner progress the queue fills.
	var jobs []*Job
	var rejected bool
	for i := 0; i < 20 && !rejected; i++ {
		j, err := c.Submit(context.Background(), Identity(), Options{K: 4, Rows: 200, Boost: 3})
		switch {
		case err == nil:
			jobs = append(jobs, j)
		case errors.Is(err, ErrJobQueueFull):
			rejected = true
		default:
			t.Fatal(err)
		}
	}
	if !rejected {
		t.Fatal("queue never filled — admission control missing")
	}
	// Cancel a still-queued job (the last accepted one is the most likely
	// to still be queued; tolerate it having started).
	last := jobs[len(jobs)-1]
	if last.Cancel() {
		if _, err := last.Wait(context.Background()); !errors.Is(err, ErrJobCanceled) {
			t.Fatalf("canceled job returned %v, want ErrJobCanceled", err)
		}
		if last.State() != JobCanceled {
			t.Fatalf("canceled job in state %v", last.State())
		}
	}
	for _, j := range jobs[:len(jobs)-1] {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := jobs[len(jobs)-1].Wait(context.Background()); err != nil && !errors.Is(err, ErrJobCanceled) {
		t.Fatal(err)
	}
}

// TestClusterCloseRegression is the PR 4 close-semantics gate: double
// Close is a nil no-op on both cluster kinds, operations after Close
// report ErrClosed, and closing with jobs in flight drains them instead
// of panicking or leaking.
func TestClusterCloseRegression(t *testing.T) {
	// In-process: close while jobs are queued and running.
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetLocalData(jobShares(18, 100, 8, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.ConfigureEngine(EngineConfig{MaxConcurrent: 1, QueueDepth: 8}); err != nil {
		t.Fatal(err)
	}
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := c.Submit(context.Background(), Identity(), Options{K: 3, Rows: 120, Boost: 2})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close with jobs in flight: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	for _, j := range jobs {
		if _, err := j.Wait(context.Background()); err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("in-flight job after close: %v", err)
		}
	}
	if _, err := c.Submit(context.Background(), Identity(), Options{K: 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if _, err := c.PCA(context.Background(), Identity(), Options{K: 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("PCA after close: %v, want ErrClosed", err)
	}
	if err := c.SetLocalData(jobShares(19, 10, 4, 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("SetLocalData after close: %v, want ErrClosed", err)
	}

	// TCP: close while a job runs, then double close.
	tc := tcpCluster(t, 3)
	if err := tc.SetLocalData(jobShares(20, 80, 8, 3)); err != nil {
		t.Fatal(err)
	}
	j, err := tc.Submit(context.Background(), Identity(), Options{K: 3, Rows: 60})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := j.Wait(context.Background()); err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("job interrupted by close: %v", err)
		}
	}()
	if err := tc.Close(); err != nil {
		t.Fatalf("tcp close with running job: %v", err)
	}
	if err := tc.Close(); err != nil {
		t.Fatalf("tcp second close: %v", err)
	}
	wg.Wait()
}

// TestEngineConfigAfterStart: reconfiguring a started engine is refused.
func TestEngineConfigAfterStart(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetLocalData(jobShares(21, 40, 5, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PCA(context.Background(), Identity(), Options{K: 2, Rows: 10}); err != nil {
		t.Fatal(err)
	}
	if err := c.ConfigureEngine(EngineConfig{MaxConcurrent: 8}); err == nil {
		t.Fatal("ConfigureEngine after first job succeeded")
	}
}

// TestClusterWordsAggregatesJobs: the cluster-wide ledger must cover
// finished jobs' session traffic.
func TestClusterWordsAggregatesJobs(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetLocalData(jobShares(22, 60, 6, 2)); err != nil {
		t.Fatal(err)
	}
	res, err := c.PCA(context.Background(), Identity(), Options{K: 2, Rows: 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Words(); got != res.Words {
		t.Fatalf("cluster words %d, job words %d", got, res.Words)
	}
	if len(c.Breakdown()) == 0 {
		t.Fatal("cluster breakdown empty after a job")
	}
	c.ResetCommunication()
	if got := c.Words(); got != 0 {
		t.Fatalf("reset left %d words", got)
	}
}
