package repro

// Job-engine throughput benchmarks: one fixed batch of PCA queries pushed
// through the multi-tenant engine at different concurrency levels, over
// both transports. Each op is the whole batch, and jobs/sec is the
// paper-facing number BENCH_pr4.json records:
//
//	ns/op     — wall time for the full batch
//	jobs/sec  — batch size / wall time
//	words/job — per-job communication (identical at every concurrency by
//	            the session determinism contract)
//
// Note the benchmark host: on a single-CPU container (this repo's CI) the
// protocol is CPU-bound, so concurrency buys overlap only where one job
// blocks (TCP round-trips), not raw parallel compute — see README's
// "parallelism on this host" note. Regenerate with: make bench-json
//
//	BENCH_JSON=BENCH_pr4.json make bench-json

import (
	"context"
	"testing"
	"time"
)

// jobBatch is the fixed number of queries per benchmark op.
const jobBatch = 16

// benchJobsBatch pushes one batch through the engine and reports
// throughput metrics.
func benchJobsBatch(b *testing.B, c *Cluster, conc int) {
	b.Helper()
	if err := c.ConfigureEngine(EngineConfig{MaxConcurrent: conc, QueueDepth: jobBatch}); err != nil {
		b.Fatal(err)
	}
	var words int64
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs := make([]*Job, jobBatch)
		for j := range jobs {
			job, err := c.Submit(context.Background(), Identity(), Options{K: 3, Rows: 24, Seed: 17})
			if err != nil {
				b.Fatal(err)
			}
			jobs[j] = job
		}
		for _, job := range jobs {
			res, err := job.Wait(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			words = res.Words
		}
	}
	b.StopTimer()
	elapsed := time.Since(start)
	total := float64(b.N * jobBatch)
	b.ReportMetric(total/elapsed.Seconds(), "jobs/sec")
	b.ReportMetric(float64(words), "words/job")
	b.ReportMetric(float64(c.net.BatchSize()), "batch_size")
}

func benchJobsMem(b *testing.B, conc int) {
	const n, d, s = 96, 12, 3
	c, err := NewCluster(s)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.SetLocalData(benchShares(n, d, s, 5)); err != nil {
		b.Fatal(err)
	}
	benchJobsBatch(b, c, conc)
}

func benchJobsTCP(b *testing.B, conc int) {
	const n, d, s = 96, 12, 3
	c, err := ListenCluster(s, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	for i := 1; i < s; i++ {
		go func() {
			if err := JoinWorker(testCtx(5*time.Second), c.Addr()); err != nil {
				b.Errorf("worker: %v", err)
			}
		}()
	}
	if err := c.AwaitWorkers(testCtx(10 * time.Second)); err != nil {
		b.Fatal(err)
	}
	if err := c.SetLocalData(benchShares(n, d, s, 5)); err != nil {
		b.Fatal(err)
	}
	benchJobsBatch(b, c, conc)
}

func BenchmarkJobsThroughputMem1(b *testing.B)  { benchJobsMem(b, 1) }
func BenchmarkJobsThroughputMem4(b *testing.B)  { benchJobsMem(b, 4) }
func BenchmarkJobsThroughputMem16(b *testing.B) { benchJobsMem(b, 16) }

func BenchmarkJobsThroughputTCP1(b *testing.B)  { benchJobsTCP(b, 1) }
func BenchmarkJobsThroughputTCP4(b *testing.B)  { benchJobsTCP(b, 4) }
func BenchmarkJobsThroughputTCP16(b *testing.B) { benchJobsTCP(b, 16) }
