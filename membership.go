package repro

// This file is the public face of elastic membership: the cluster-level
// view of which workers are alive, and the failover wiring that keeps
// the job engine correct when one dies. On a TCP cluster AwaitWorkers
// arms the whole machine — heartbeat probes, the clock-driven failure
// detector, and a join loop that admits replacement workers into
// vacated slots (cmd/dlra-worker -rejoin). When a worker dies the
// engine pauses, parked sessions are retired, and any job the death
// interrupted is resubmitted at the queue head with its original id —
// and therefore its original derived seed — so the retried run's
// projection and communication transcript are bit-identical to an
// undisturbed run. When a replacement handshakes in, every installed
// dataset's share for that slot is re-fed from the registry and the
// engine resumes.
//
// In-process clusters have no failure detector (every worker is a
// goroutine in this process); their membership view is synthesized as
// all-active, and the same retry path serves the mem fabric's synthetic
// link-failure seam.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/membership"
)

// replaceQuiesceTimeout bounds how long a replacement worker's
// handshake waits for interrupted jobs to unwind; a joiner rejected by
// the timeout simply retries.
const replaceQuiesceTimeout = 30 * time.Second

// ErrWorkerLost reports that a worker's link died under a running
// protocol. Job.Wait surfaces it (wrapped) when a job exhausts its
// failover retries; callers match it with errors.Is and resubmit once
// the cluster reports every member active again.
var ErrWorkerLost = comm.ErrWorkerLost

// Worker liveness states as reported by Members (the string forms of
// the membership state machine: joining → active ⇄ suspect → dead →
// joining again on re-placement, or draining on voluntary leave).
const (
	MemberJoining  = "joining"
	MemberActive   = "active"
	MemberSuspect  = "suspect"
	MemberDead     = "dead"
	MemberDraining = "draining"
)

// MemberInfo is the liveness snapshot of one worker slot.
type MemberInfo struct {
	// Index is the logical server index (1…s−1; the CP is not a member).
	Index int
	// State is the slot's liveness state (see the Member* constants).
	State string
	// Epoch counts the workers that have held the slot: 1 for the
	// original, +1 per failover re-placement.
	Epoch uint64
	// Missed is the consecutive missed-heartbeat count at the last
	// detector tick.
	Missed int
	// RTT is the most recent heartbeat round-trip time.
	RTT time.Duration
}

// MembershipStats is a point-in-time summary of cluster liveness, the
// /metrics source for dlra-serve's membership gauges.
type MembershipStats struct {
	// Active, Suspect, Dead, Joining and Draining count worker slots per
	// liveness state.
	Active, Suspect, Dead, Joining, Draining int
	// Failovers counts dead slots successfully re-placed by a
	// replacement worker over the cluster's lifetime.
	Failovers int64
	// HeartbeatCount is the cumulative number of completed heartbeat
	// round trips (the Prometheus summary's _count).
	HeartbeatCount int64
	// HeartbeatRTTSum is the cumulative heartbeat round-trip time over
	// those beats (the Prometheus summary's _sum).
	HeartbeatRTTSum time.Duration
}

// Members reports the liveness of every worker slot, sorted by index.
// In-process clusters (whose workers are goroutines in this process)
// report every slot active at epoch 1.
func (c *Cluster) Members() []MemberInfo {
	if tbl := c.membershipTable(); tbl != nil {
		ms := tbl.Members()
		out := make([]MemberInfo, len(ms))
		for i, m := range ms {
			out[i] = memberInfo(m)
		}
		return out
	}
	if c.net == nil {
		return nil
	}
	out := make([]MemberInfo, 0, c.net.Servers()-1)
	for t := 1; t < c.net.Servers(); t++ {
		out = append(out, MemberInfo{Index: t, State: MemberActive, Epoch: 1})
	}
	return out
}

// MembershipStats summarizes cluster liveness. In-process clusters
// report every worker active with zero failovers and an empty RTT
// summary.
func (c *Cluster) MembershipStats() MembershipStats {
	tbl := c.membershipTable()
	if tbl == nil {
		n := 0
		if c.net != nil {
			n = c.net.Servers() - 1
		}
		return MembershipStats{Active: n}
	}
	counts := tbl.Counts()
	count, sum := tbl.RTTStats()
	return MembershipStats{
		Active:          counts[membership.Active],
		Suspect:         counts[membership.Suspect],
		Dead:            counts[membership.Dead],
		Joining:         counts[membership.Joining],
		Draining:        counts[membership.Draining],
		Failovers:       tbl.Failovers(),
		HeartbeatCount:  count,
		HeartbeatRTTSum: sum,
	}
}

// OnMembershipChange installs the membership observer, called once per
// worker state transition (at most one observer; nil uninstalls). On
// in-process clusters no transitions ever fire. The callback runs on
// cluster-internal goroutines — return quickly and do not call back
// into the cluster from it.
func (c *Cluster) OnMembershipChange(fn func(MemberInfo)) {
	c.mu.Lock()
	c.memberCB = fn
	c.mu.Unlock()
}

// membershipTable returns the coordinator's membership table, nil on
// in-process clusters and before AwaitWorkers.
func (c *Cluster) membershipTable() *membership.Table {
	if c.coord == nil {
		return nil
	}
	return c.coord.Membership()
}

func memberInfo(m membership.Member) MemberInfo {
	return MemberInfo{Index: m.Index, State: m.State.String(), Epoch: m.Epoch, Missed: m.Missed, RTT: m.RTT}
}

// enableMembership arms the failover machine on a TCP cluster, called
// once from AwaitWorkers: death pauses the engine and retires parked
// sessions; a replacement triggers the share re-feed; activation
// resumes the engine once no slot is dead or mid-join.
func (c *Cluster) enableMembership() error {
	coord := c.coord
	coord.OnWorkerDead(func(worker int, err error) {
		// Hold the queue before touching the pool: nothing new starts on
		// the broken fabric. Parked sessions then get the full teardown —
		// the survivors drop their runner state; sends to the dead slot
		// fail fast and are tolerated.
		c.reconcileEngine()
		for _, s := range c.pool.purge() {
			c.teardownSession(s, true, false)
		}
	})
	coord.OnBeforeReplace(func(worker int) error {
		// The claimed slot counts as mid-join, so reconcile holds the
		// queue; then wait for every interrupted run to observe the
		// poisoned link and requeue before the swap clears the poison.
		c.reconcileEngine()
		if !c.eng.awaitQuiet(replaceQuiesceTimeout) {
			return fmt.Errorf("repro: engine did not quiesce for the re-placement of worker %d", worker)
		}
		return nil
	})
	coord.OnWorkerReplaced(func(worker int) error {
		return c.reinstallShares(context.Background(), worker)
	})
	if err := coord.EnableMembership(membership.Config{}); err != nil {
		return err
	}
	tbl := coord.Membership()
	tbl.OnChange(func(tr membership.Transition) {
		c.reconcileEngine()
		c.mu.Lock()
		fn := c.memberCB
		c.mu.Unlock()
		if fn != nil {
			fn(memberInfo(tr.Member))
		}
	})
	return nil
}

// reconcileEngine pauses or resumes the job queue to match the current
// membership table: any dead or mid-join slot holds the queue, a whole
// cluster reopens it. Every liveness event calls this instead of a bare
// pause or resume: a decision derived from the event itself could land
// out of order (a link-death callback can fire after its slot's
// replacement already activated — pausing an engine nothing will ever
// resume), whereas serialized re-reads of the table converge to the
// final state's decision under every callback interleaving.
func (c *Cluster) reconcileEngine() {
	tbl := c.membershipTable()
	if tbl == nil {
		return
	}
	c.reconcileMu.Lock()
	defer c.reconcileMu.Unlock()
	counts := tbl.Counts()
	if counts[membership.Dead] > 0 || counts[membership.Joining] > 0 {
		c.eng.pause()
	} else {
		c.eng.resume()
	}
}

// reinstallShares re-feeds every installed dataset's share for one
// worker slot from the registry — the re-placement path. Each dataset
// is shipped under its read lock, so a reinstall never observes a
// half-applied delta; the replacement receives the same current
// snapshot every surviving worker holds.
func (c *Cluster) reinstallShares(ctx context.Context, worker int) error {
	c.mu.Lock()
	ids := append([]string(nil), c.order...)
	c.mu.Unlock()
	for _, id := range ids {
		c.mu.Lock()
		ds := c.datasets[id]
		c.mu.Unlock()
		if ds == nil {
			continue
		}
		ds.mu.RLock()
		var err error
		if worker < len(ds.locals) {
			err = c.coord.ReinstallShare(ctx, worker, ds.key, ds.locals[worker])
		}
		ds.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// pauseForFailover holds the job queue after a mid-run worker loss on a
// membership-enabled cluster, so a requeued job waits for the
// re-placement instead of burning its retry attempts against a dead
// slot. It is the runJob-side reconcile: if the table already reports
// the cluster whole — the replacement won the race — the queue stays
// open.
func (c *Cluster) pauseForFailover() {
	c.reconcileEngine()
}
