package repro

// This file is the v2 option surface of the public API. Queries are
// configured with variadic functional options —
//
//	res, err := cluster.PCA(ctx, repro.Huber(20),
//		repro.WithRank(10), repro.WithEpsilon(0.1))
//
// — instead of growing the monolithic Options struct a field per feature.
// The legacy struct still works: Options itself satisfies Option (it is
// the compat shim), so existing call sites migrate by inserting a ctx and
// nothing else. New code should prefer the With* setters.

import (
	"fmt"
	"time"
)

// Option configures one PCA query (see Cluster.PCA and Cluster.Submit).
// Options are applied in order; later options override earlier ones. The
// deprecated Options struct satisfies Option by replacing the whole
// configuration, so it composes with setters only when listed first.
type Option interface {
	apply(*Options)
}

// optionFunc adapts a setter function to the Option interface.
type optionFunc func(*Options)

func (f optionFunc) apply(o *Options) { f(o) }

// apply makes the legacy Options struct itself an Option: it replaces the
// whole configuration wholesale.
//
// Deprecated: build queries from the With* setters instead; the struct
// form exists so v1 call sites only need to insert a ctx argument.
func (o Options) apply(dst *Options) { *dst = o }

// buildOptions folds an option list into a concrete configuration.
func buildOptions(opts []Option) Options {
	var o Options
	for _, opt := range opts {
		opt.apply(&o)
	}
	return o
}

// WithRank sets the target rank k (required on every query).
func WithRank(k int) Option { return optionFunc(func(o *Options) { o.K = k }) }

// WithEpsilon sets the additive error parameter ε (default 0.1).
func WithEpsilon(eps float64) Option { return optionFunc(func(o *Options) { o.Eps = eps }) }

// WithRows overrides the sampled row count r (default ⌈4k²/ε²⌉).
func WithRows(r int) Option { return optionFunc(func(o *Options) { o.Rows = r }) }

// WithBoost repeats the protocol, keeping the best projection by captured
// energy (default 1).
func WithBoost(b int) Option { return optionFunc(func(o *Options) { o.Boost = b }) }

// WithSamplerBudget caps the words the generalized sampler's sketching
// may use; 0 accepts the default configuration.
func WithSamplerBudget(words int64) Option {
	return optionFunc(func(o *Options) { o.SamplerBudget = words })
}

// WithSeed fixes all randomness (0 uses a fixed default for
// reproducibility). Submit derives the effective protocol seed from
// (seed, job id); the blocking PCA uses it literally.
func WithSeed(seed int64) Option { return optionFunc(func(o *Options) { o.Seed = seed }) }

// WithWorkers bounds the worker pool the sampler's sketching phase fans
// out on (0 or 1 = sequential). Results and transcripts are identical at
// any worker count.
func WithWorkers(w int) Option { return optionFunc(func(o *Options) { o.Workers = w }) }

// WithBatchSize shapes how many pipelined same-destination request
// frames coalesce into one wire batch envelope on a TCP cluster: 0 (the
// default) lets every pipelined sequence travel as one envelope per
// link, 1 disables batching (every frame is its own write), k > 1
// flushes an envelope every k frames. Purely a wire-framing knob — the
// word/byte ledger and the transcript are bit-identical at every
// setting, and in-process clusters ignore it entirely.
func WithBatchSize(k int) Option { return optionFunc(func(o *Options) { o.BatchSize = k }) }

// WithBackend converts the shares' storage representation for this run
// (BackendAuto keeps them as installed). Results are identical under
// every backend.
func WithBackend(b Backend) Option { return optionFunc(func(o *Options) { o.Backend = b }) }

// WithDataset routes the query to the named installed dataset (empty =
// the active dataset).
func WithDataset(id string) Option { return optionFunc(func(o *Options) { o.Dataset = id }) }

// WithDeadline bounds the job's wall clock, measured from submission: a
// job still queued or running when the budget expires is canceled at its
// next protocol round and reports ErrCanceled (wrapping
// context.DeadlineExceeded). It composes with — and is bounded by — the
// ctx passed to PCA/Submit.
func WithDeadline(d time.Duration) Option {
	return optionFunc(func(o *Options) { o.Deadline = d })
}

// TransportKind selects the fabric a cluster is built on.
type TransportKind string

const (
	// TransportMem hosts every server in this process over the in-memory
	// transport (the default).
	TransportMem TransportKind = "mem"
	// TransportTCP hosts only the CP here: the cluster listens for one
	// worker process per remaining server (see AwaitWorkers, JoinWorker).
	TransportTCP TransportKind = "tcp"
)

// ClusterOption configures cluster construction (see New).
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	transport TransportKind
	listen    string
	engine    EngineConfig
}

// WithTransport selects the fabric transport: TransportMem (in-process,
// the default) or TransportTCP (multi-process; combine with
// WithListenAddr and call AwaitWorkers before installing data).
func WithTransport(t TransportKind) ClusterOption {
	return func(c *clusterConfig) { c.transport = t }
}

// WithListenAddr sets the coordinator listen address of a TransportTCP
// cluster (default "127.0.0.1:0", an ephemeral loopback port).
func WithListenAddr(addr string) ClusterOption {
	return func(c *clusterConfig) { c.listen = addr }
}

// WithEngineConfig bounds the job engine at construction (runner pool
// size and admission queue depth) — the option form of ConfigureEngine.
func WithEngineConfig(cfg EngineConfig) ClusterOption {
	return func(c *clusterConfig) { c.engine = cfg }
}

// New builds a cluster of s servers from options: the v2 constructor
// unifying NewCluster and ListenCluster.
//
//	c, err := repro.New(4)                                  // in-process
//	c, err := repro.New(4, repro.WithTransport(repro.TransportTCP),
//		repro.WithListenAddr("127.0.0.1:0"))                // coordinator
//
// A TCP cluster is returned listening; call AwaitWorkers(ctx) once the
// worker processes have been started.
func New(s int, opts ...ClusterOption) (*Cluster, error) {
	cfg := clusterConfig{transport: TransportMem, listen: "127.0.0.1:0"}
	for _, opt := range opts {
		opt(&cfg)
	}
	var (
		c   *Cluster
		err error
	)
	switch cfg.transport {
	case TransportMem:
		c, err = NewCluster(s)
	case TransportTCP:
		c, err = ListenCluster(s, cfg.listen)
	default:
		return nil, fmt.Errorf("repro: unknown transport %q", cfg.transport)
	}
	if err != nil {
		return nil, err
	}
	if cfg.engine != (EngineConfig{}) {
		if err := c.ConfigureEngine(cfg.engine); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}
