package repro

// Frame-buffer lifecycle audit: every pooled buffer the fabric checks out
// must come back, including on the abort and teardown paths a mid-run
// cancellation exercises. The comm pool counts every getBuf/putBuf
// (comm.PoolStats), so after a full TCP cancel scenario tears down —
// sessions aborted, clusters closed, worker goroutines exited — the
// get/put deltas must balance or a path is leaking frames.

import (
	"testing"
	"time"

	"repro/internal/comm"
)

// TestPoolAccountingCancelTCP runs the full mid-run-cancellation
// determinism gate over TCP (the same scenario as TestCancelMidRunTCP,
// which stresses OpAbort teardown, envelope splitting and session drains)
// and asserts the pool returned every buffer it handed out. Worker
// goroutines wind down asynchronously after Close, so the balance is
// polled rather than read once.
func TestPoolAccountingCancelTCP(t *testing.T) {
	gets0, puts0 := comm.PoolStats()
	cancelDeterminismGate(t, func(t *testing.T) *Cluster {
		return tcpCluster(t, 3)
	})
	mustPoolBalance(t, gets0, puts0)
}

// TestPoolAccountingSessionReuseTCP audits the session-pool reuse path:
// several sequential jobs on one TCP cluster, all but the first served by
// a parked session (no bind/end frames, recycled ledger), must still
// return every frame buffer to the comm pool once the cluster closes —
// including the buffers of the parked sessions torn down by the
// Close-time pool drain.
func TestPoolAccountingSessionReuseTCP(t *testing.T) {
	gets0, puts0 := comm.PoolStats()
	func() {
		c := tcpCluster(t, 3)
		defer c.Close()
		if err := c.SetLocalData(jobShares(51, 48, 7, 3)); err != nil {
			t.Fatal(err)
		}
		opts := Options{K: 3, Rows: 12, Seed: 777}
		for i := 0; i < 4; i++ {
			if _, err := c.PCA(testCtx(time.Minute), Huber(1.5), opts); err != nil {
				t.Fatal(err)
			}
		}
		if st := c.SessionPoolStats(); st.Hits < 3 {
			t.Fatalf("jobs did not reuse pooled sessions: %+v", st)
		}
	}()
	mustPoolBalance(t, gets0, puts0)
}

// TestPoolAccountingCancelPooledSessionTCP audits the hardest mix: a job
// that acquires a session from the warm pool and is then canceled mid-run
// takes the abort/drain teardown (a pooled session must never be re-parked
// after a cancellation), and the whole lifecycle — park, reuse, abort,
// cluster close — must leak no frame buffers.
func TestPoolAccountingCancelPooledSessionTCP(t *testing.T) {
	gets0, puts0 := comm.PoolStats()
	func() {
		c := tcpCluster(t, 3)
		defer c.Close()
		if err := c.SetLocalData(jobShares(52, 90, 8, 3)); err != nil {
			t.Fatal(err)
		}
		// Warm the pool with a clean job so the canceled one is a pool hit.
		if _, err := c.PCA(testCtx(time.Minute), Huber(1.5), Options{K: 3, Rows: 12, Seed: 777}); err != nil {
			t.Fatal(err)
		}
		if st := c.SessionPoolStats(); st.Idle == 0 {
			t.Fatalf("warm-up parked no session: %+v", st)
		}
		j := submitCancelAt(t, c, 3)
		assertCanceled(t, j)
		st := c.SessionPoolStats()
		if st.Hits == 0 {
			t.Fatalf("canceled job did not come from the pool: %+v", st)
		}
		if st.Idle != 0 {
			t.Fatalf("canceled job's session was re-parked: %+v", st)
		}
	}()
	mustPoolBalance(t, gets0, puts0)
}

// mustPoolBalance polls until the comm pool's get/put deltas since the
// given baseline balance. Worker goroutines wind down asynchronously after
// Close, so the balance is polled rather than read once; a zero delta
// means the scenario never touched the pool and the audit measured
// nothing, which also fails.
func mustPoolBalance(t *testing.T, gets0, puts0 int64) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		gets, puts := comm.PoolStats()
		dg, dp := gets-gets0, puts-puts0
		if dg == dp {
			if dg == 0 {
				t.Fatal("scenario moved no pooled buffers — the audit measured nothing")
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("pool unbalanced after teardown: %d gets vs %d puts (leak of %d buffers)", dg, dp, dg-dp)
		case <-time.After(10 * time.Millisecond):
		}
	}
}
