package repro

// Frame-buffer lifecycle audit: every pooled buffer the fabric checks out
// must come back, including on the abort and teardown paths a mid-run
// cancellation exercises. The comm pool counts every getBuf/putBuf
// (comm.PoolStats), so after a full TCP cancel scenario tears down —
// sessions aborted, clusters closed, worker goroutines exited — the
// get/put deltas must balance or a path is leaking frames.

import (
	"testing"
	"time"

	"repro/internal/comm"
)

// TestPoolAccountingCancelTCP runs the full mid-run-cancellation
// determinism gate over TCP (the same scenario as TestCancelMidRunTCP,
// which stresses OpAbort teardown, envelope splitting and session drains)
// and asserts the pool returned every buffer it handed out. Worker
// goroutines wind down asynchronously after Close, so the balance is
// polled rather than read once.
func TestPoolAccountingCancelTCP(t *testing.T) {
	gets0, puts0 := comm.PoolStats()
	cancelDeterminismGate(t, func(t *testing.T) *Cluster {
		return tcpCluster(t, 3)
	})

	deadline := time.After(10 * time.Second)
	for {
		gets, puts := comm.PoolStats()
		dg, dp := gets-gets0, puts-puts0
		if dg == dp {
			if dg == 0 {
				t.Fatal("scenario moved no pooled buffers — the audit measured nothing")
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("pool unbalanced after teardown: %d gets vs %d puts (leak of %d buffers)", dg, dp, dg-dp)
		case <-time.After(10 * time.Millisecond):
		}
	}
}
