// Package repro is a Go implementation of "Distributed Low Rank
// Approximation of Implicit Functions of a Matrix" (Woodruff & Zhong,
// ICDE 2016). It computes additive-error low rank approximations (PCA) of
// a matrix A that exists only implicitly across s servers:
//
//	A[i][j] = f(Σ_t A^t[i][j]),
//
// where server t holds A^t and f is an entrywise function — the paper's
// generalized partition model. Supported applications include PCA of
// Gaussian random Fourier feature expansions, softmax (generalized mean)
// combination across servers, and robust PCA via M-estimator ψ-functions.
//
// The package exposes the high-level protocol; the building blocks live in
// internal packages: internal/core (the Algorithm 1 framework),
// internal/zsampler (the generalized sampler), internal/hh (distributed
// heavy hitters), internal/sketch (CountSketch/AMS), internal/matrix
// (storage backends — dense and sparse CSR — plus linear algebra),
// internal/comm (the accounting network), and internal/lowerbound (the
// paper's hardness reductions, executable).
//
// Quick start (the ctx-first v2 API):
//
//	cluster, _ := repro.New(10)
//	cluster.SetLocalData(shares)              // one matrix per server
//	res, err := cluster.PCA(ctx, repro.Huber(20),
//		repro.WithRank(10), repro.WithEpsilon(0.1))
//	// res.Projection is the d×d rank-k projection; res.Words the comm cost.
//
// Every blocking entry point is ctx-first — canceling the ctx (or a
// WithDeadline budget) stops a running protocol before its next round.
// Long-running queries go through the job engine instead: Submit returns
// a Job whose Wait/Cancel/Progress/Rounds expose the live protocol.
package repro

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fn"
	"repro/internal/matrix"
	"repro/internal/ops"
	"repro/internal/rff"
	"repro/internal/samplers"
	"repro/internal/warm"
	"repro/internal/zsampler"
)

// Typed errors for invalid cluster construction and PCA options; callers
// match them with errors.Is.
var (
	// ErrInvalidServers: cluster constructed with fewer than one server.
	ErrInvalidServers = errors.New("repro: cluster needs at least one server")
	// ErrInvalidRank: Options.K below 1.
	ErrInvalidRank = errors.New("repro: Options.K must be at least 1")
	// ErrInvalidWorkers: Options.Workers below 0.
	ErrInvalidWorkers = errors.New("repro: Options.Workers must not be negative")
	// ErrShapeMismatch: per-server shares with inconsistent shapes.
	ErrShapeMismatch = errors.New("repro: share shapes do not match")
	// ErrNoData: PCA or Submit before any dataset was installed.
	ErrNoData = errors.New("repro: SetLocalData before running a protocol")
	// ErrTCPBackend: per-run backend conversion on a TCP cluster (the
	// shares were already installed on the workers; convert first).
	ErrTCPBackend = errors.New("repro: storage backend is fixed at share installation on TCP clusters")
	// ErrClosed: any operation on a cluster after Close (Close itself is
	// idempotent and returns nil on repeated calls).
	ErrClosed = errors.New("repro: cluster is closed")
	// ErrJobQueueFull: Submit when the admission queue is at capacity.
	ErrJobQueueFull = errors.New("repro: job queue is full")
	// ErrCanceled: the job was canceled — by Job.Cancel, by its ctx, by
	// WithDeadline, or by a dlra-serve DELETE — whether it was still
	// queued or already mid-run (a running job stops before its next
	// protocol round). The returned error wraps both ErrCanceled and the
	// context cause, so errors.Is matches ErrCanceled, context.Canceled
	// and context.DeadlineExceeded as appropriate.
	ErrCanceled = errors.New("repro: job canceled")
	// ErrJobCanceled is the pre-v2 name of ErrCanceled.
	//
	// Deprecated: match ErrCanceled.
	ErrJobCanceled = ErrCanceled
	// ErrUnknownDataset: Options.Dataset names a dataset never installed.
	ErrUnknownDataset = errors.New("repro: unknown dataset")
	// ErrDatasetConflict: InstallDataset with an id already bound to
	// different data.
	ErrDatasetConflict = errors.New("repro: dataset id already installed with different data")
)

// Matrix is the dense matrix type used throughout the public API.
type Matrix = matrix.Dense

// Mat is the read-only matrix interface the protocols consume; both the
// dense Matrix and the sparse CSR backend satisfy it. Results are
// bit-identical across backends for the same logical matrix.
type Mat = matrix.Mat

// CSR is the compressed-sparse-row matrix backend: per-row sorted
// (column, value) runs, costing O(nnz) on the protocols' per-row hot paths
// where the dense backend costs O(d).
type CSR = matrix.CSR

// Triple is one (row, col, value) entry for sparse construction.
type Triple = matrix.Triple

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix { return matrix.NewDense(r, c) }

// FromRows builds a matrix from rows, copying them.
func FromRows(rows [][]float64) *Matrix { return matrix.FromRows(rows) }

// NewCSR builds an r×c sparse matrix from coordinate triples
// (deterministically: duplicates are summed, zeros dropped).
func NewCSR(r, c int, triples []Triple) *CSR { return matrix.NewCSR(r, c, triples) }

// ToCSR compresses any matrix to the CSR backend.
func ToCSR(m Mat) *CSR { return matrix.ToCSR(m) }

// ToDense materializes any matrix as a dense Matrix.
func ToDense(m Mat) *Matrix { return matrix.ToDense(m) }

// Func pairs the entrywise f with the sampling weight z the protocol needs.
// Construct instances with Identity, AbsPower, SoftmaxGM, Huber, L1L2 or
// Fair; or adapt your own with Custom.
type Func struct {
	f fn.Func
	z fn.ZFunc // nil ⇒ uniform row sampling
}

// Name reports the function's display name.
func (f Func) Name() string { return f.f.Name() }

// Identity is plain distributed PCA of the summed matrix (f(x) = x).
func Identity() Func { return Func{f: fn.Identity{}, z: fn.Identity{}} }

// AbsPower is f(x) = |x|^p.
func AbsPower(p float64) Func { return Func{f: fn.AbsPower{P: p}, z: fn.AbsPower{P: p}} }

// SoftmaxGM is the softmax / generalized-mean combination with exponent p:
// the implicit entry is GM(|M¹_ij|,…,|Mˢ_ij|) when each server prepares its
// share with PrepareGM. Large p approximates an entrywise max.
func SoftmaxGM(p float64) Func { return Func{f: fn.GM{P: p}, z: fn.GM{P: p}} }

// Huber caps implicit entries at ±k via the Huber ψ-function (robust PCA).
func Huber(k float64) Func { return Func{f: fn.Huber{K: k}, z: fn.Huber{K: k}} }

// L1L2 applies the L1−L2 M-estimator ψ-function entrywise.
func L1L2() Func { return Func{f: fn.L1L2{}, z: fn.L1L2{}} }

// Fair applies the "Fair" M-estimator ψ-function with scale c entrywise.
func Fair(c float64) Func { return Func{f: fn.Fair{C: c}, z: fn.Fair{C: c}} }

// UniformRows declares that rows of f(ΣA^t) have near-equal norms, so
// uniform sampling is valid — the situation of random Fourier feature
// expansions. f is applied entrywise; no weight function is needed.
func UniformRows(f func(float64) float64, name string) Func {
	return Func{f: customF{fn: f, name: name}}
}

// Cosine is the √2·cos(x) nonlinearity of Gaussian random Fourier features
// with uniform row sampling.
func Cosine() Func { return Func{f: fn.SqrtTwoCos{}} }

// Custom adapts a caller-supplied f and z. z must satisfy property P
// (validated on first use); pass zNil = true to request uniform sampling.
func Custom(f fn.Func, z fn.ZFunc) Func { return Func{f: f, z: z} }

type customF struct {
	fn   func(float64) float64
	name string
}

func (c customF) Name() string            { return c.name }
func (c customF) Apply(x float64) float64 { return c.fn(x) }

// PrepareGM converts a raw local matrix into the share server t must hold
// for the SoftmaxGM model: entry ← |entry|^p / s.
func PrepareGM(local *Matrix, p float64, s int) *Matrix {
	g := fn.GM{P: p}
	return local.Apply(func(x float64) float64 { return g.Prepare(x, s) })
}

// Backend selects the storage representation of the per-server shares for
// the duration of a PCA run. The protocol's result and communication
// transcript are identical under every backend; the choice trades memory
// and per-row work (CSR pays O(nnz), dense pays O(d)).
type Backend = matrix.Backend

// BackendAuto (the zero value) keeps the shares as installed; the others
// convert for the run.
const (
	BackendAuto  = matrix.BackendAuto
	BackendDense = matrix.BackendDense
	BackendCSR   = matrix.BackendCSR
	BackendFast  = matrix.BackendFast
)

// Options configures a PCA run.
//
// Deprecated: Options is the v1 configuration surface, kept as a compat
// shim — the struct satisfies Option, so it can still be passed to the
// ctx-first PCA/Submit directly. New code should use the functional
// With* options (see options.go).
type Options struct {
	// Dataset selects the installed dataset the job runs against (empty =
	// the active dataset, i.e. the most recently installed or selected).
	Dataset string
	// K is the target rank (required).
	K int
	// Eps is the additive error parameter ε (default 0.1).
	Eps float64
	// Rows overrides the sample count r (default ⌈4k²/ε²⌉).
	Rows int
	// Boost repeats the protocol, keeping the best projection by captured
	// energy (default 1).
	Boost int
	// SamplerBudget caps the words the generalized sampler's sketching may
	// use; 0 accepts the default configuration.
	SamplerBudget int64
	// Seed fixes all randomness (0 uses a fixed default for
	// reproducibility).
	Seed int64
	// Workers bounds the worker pool the generalized sampler's sketching
	// phase fans out on (0 or 1 = sequential). The protocol's result and
	// communication transcript are identical at any worker count.
	Workers int
	// Backend converts the shares' storage representation for this run
	// (BackendAuto keeps them as installed). Results are identical under
	// every backend.
	Backend Backend
	// Deadline bounds the job's wall clock from submission; 0 means no
	// bound (see WithDeadline).
	Deadline time.Duration
	// BatchSize shapes the wire batching of pipelined request frames on a
	// TCP cluster: 0 = default (one envelope per pipelined sequence per
	// link), 1 = no batching, k > 1 = flush every k frames. The ledger and
	// transcript are identical at every setting (see WithBatchSize).
	BatchSize int
}

// Result is the outcome of a distributed PCA.
type Result struct {
	// JobID identifies the job that produced the result (0 for none).
	JobID uint64
	// Projection is the d×d rank-k projection matrix P; AP approximates A.
	Projection *Matrix
	// Basis is the d×k orthonormal basis of the projected subspace.
	Basis *Matrix
	// SampledRows are the row indices the protocol drew (with repetition).
	SampledRows []int
	// Words is the total communication in 64-bit words.
	Words int64
	// Bytes is the communication as encoded on the wire — every payload
	// serialized through the typed frame codec — headers included. The
	// fabric guarantees Bytes == 8·Words + header overhead per phase.
	Bytes int64
	// Breakdown reports words per protocol phase, for this run only (a
	// reused cluster's cumulative tallies live on Cluster.Breakdown).
	Breakdown map[string]int64
}

// Cluster is the paper's star network of s servers with exact
// communication accounting. An in-process cluster (NewCluster) hosts
// every server in this process over the in-memory transport; a TCP
// cluster (ListenCluster) hosts only the CP here and drives one worker
// process per remaining server — same protocols, same transcripts, real
// wire.
//
// A Cluster is safe for concurrent use: many jobs may run at once, each
// inside its own comm session on the shared fabric, against any of the
// installed datasets (see Submit). The blocking PCA is a thin wrapper
// over the same engine.
type Cluster struct {
	net *comm.Network
	// coord is non-nil for TCP clusters; worker shares there are
	// reachable exclusively through the fabric.
	coord *cluster.Coordinator
	eng   *engine
	// pool parks cleanly finished bound sessions between jobs so
	// back-to-back jobs on one dataset skip the bind/end handshake (see
	// session_pool.go).
	pool *sessionPool

	// installMu serializes dataset installations end to end (registry
	// check through share shipping); mu guards the fast-changing state.
	installMu sync.Mutex
	mu        sync.Mutex
	closed    bool
	datasets  map[string]*datasetEntry
	order     []string // dataset insertion order, for listings
	active    string
	nextJobID uint64
	// memberCB is the OnMembershipChange observer (nil when unset).
	memberCB func(MemberInfo)
	// reconcileMu serializes reconcileEngine's table-read → pause/resume
	// decisions so concurrent liveness callbacks cannot interleave a
	// stale decision after a newer one.
	reconcileMu sync.Mutex
	// Finished-job traffic accumulated into the cluster-wide totals (the
	// root fabric's own ledger only sees session-0 traffic).
	jobWords int64
	jobBytes int64
	jobTags  map[string]int64
}

// datasetEntry is one installed dataset: the full shares (for in-process
// protocol access and ImplicitMatrix), the coordinator-side masked view
// for TCP clusters, and the wire key the workers cache it under.
type datasetEntry struct {
	id     string
	key    uint64
	fp     uint64
	locals []Mat
	masked []Mat
	rows   int
	cols   int

	// mu orders delta installation against protocol execution: a job
	// holds the read side for its whole protocol run, AppendRows and
	// UpdateRows hold the write side while folding a delta — so no job
	// ever observes a half-applied delta, and the warm stores only see
	// monotonically growing shares. Lock order: installMu → mu → c.mu;
	// nothing holding c.mu ever acquires a dataset lock.
	mu sync.RWMutex
	// stores are the per-server warm sketch stores protocol runs serve
	// their sketches from. On a TCP cluster only slot 0 (the CP's own
	// share) is hosted here — the workers keep their stores share-side.
	stores []*warm.Store
	// hstates are the per-share resumable fingerprint states; delta
	// installations continue them instead of rehashing the dataset, so
	// the chained fingerprint equals the one a fresh install of the same
	// final content would compute.
	hstates []uint64
	// appended counts rows added since installation; lastDelta is the
	// wall clock of the most recent delta installation.
	appended  int
	lastDelta time.Time
}

// DatasetInfo describes one installed dataset.
type DatasetInfo struct {
	// ID is the dataset's registry id (explicit, or "auto-…" content ids
	// minted by SetLocalData/SetLocalMats).
	ID string
	// Rows and Cols are the shape every share has. Rows tracks appends:
	// it is the current row count, not the installed one.
	Rows, Cols int
	// Active reports whether jobs with Options.Dataset == "" run here.
	Active bool
	// Fingerprint is the dataset's chained content fingerprint. Delta
	// installations advance it by hash chaining, so it always equals the
	// fingerprint a fresh install of the current content would compute.
	Fingerprint uint64
	// AppendedRows counts rows added by AppendRows since installation.
	AppendedRows int
	// LastAppend is the wall-clock time of the most recent delta
	// installation (zero if the dataset never received one).
	LastAppend time.Time
}

// NewCluster creates an in-process cluster of s servers (server 0 is the
// CP).
func NewCluster(s int) (*Cluster, error) {
	if s < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrInvalidServers, s)
	}
	c := &Cluster{net: comm.NewNetwork(s), datasets: make(map[string]*datasetEntry), jobTags: make(map[string]int64), pool: newSessionPool()}
	c.eng = newEngine(c)
	return c, nil
}

// ListenCluster starts the coordinator of a multi-process cluster: it
// listens on addr (use "127.0.0.1:0" for an ephemeral loopback port) for
// s−1 workers to join (JoinWorker or cmd/dlra-worker). Call AwaitWorkers
// before installing data.
func ListenCluster(s int, addr string) (*Cluster, error) {
	if s < 2 {
		return nil, fmt.Errorf("%w (a TCP cluster needs at least 2, got %d)", ErrInvalidServers, s)
	}
	coord, err := cluster.Listen(s, addr)
	if err != nil {
		return nil, err
	}
	c := &Cluster{coord: coord, datasets: make(map[string]*datasetEntry), jobTags: make(map[string]int64), pool: newSessionPool()}
	c.eng = newEngine(c)
	return c, nil
}

// Addr returns the address workers should join (TCP clusters only).
func (c *Cluster) Addr() string {
	if c.coord == nil {
		return ""
	}
	return c.coord.Addr()
}

// AwaitWorkers blocks until every worker has joined and handshaked, then
// brings up the remote-aware fabric (TCP clusters only) and arms elastic
// membership: heartbeat probes, the failure detector, and the join loop
// that admits replacement workers into vacated slots (see Members and
// ErrWorkerLost). ctx bounds the whole bring-up — cancel it or give it a
// deadline to stop waiting.
func (c *Cluster) AwaitWorkers(ctx context.Context) error {
	if c.coord == nil {
		return errors.New("repro: AwaitWorkers on an in-process cluster")
	}
	if err := c.coord.AwaitWorkers(ctx); err != nil {
		return err
	}
	c.net = c.coord.Network()
	return c.enableMembership()
}

// Close stops the job engine — failing still-queued jobs with ErrClosed
// and waiting for running jobs to drain — then shuts down a TCP cluster's
// workers and sockets. Close is idempotent: repeated calls return nil.
// Every other cluster operation after Close reports ErrClosed.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.eng.shutdown()
	// With the engine drained no job can touch the pool again: tear down
	// every parked session (the OpEndSession handshake needs the workers
	// still up, so this precedes the coordinator close).
	for _, s := range c.pool.drain() {
		c.teardownSession(s, true, false)
	}
	if c.coord == nil {
		return nil
	}
	return c.coord.Close()
}

// JoinWorker runs a worker process's serve loop: dial the coordinator,
// host the share it installs, execute protocol ops against it until the
// coordinator shuts the cluster down. ctx bounds the connection phase
// only (workers typically start before the coordinator listens, so the
// dial retries until ctx fires); once connected, the serve loop runs to
// cluster shutdown.
func JoinWorker(ctx context.Context, addr string) error {
	return cluster.Dial(ctx, addr)
}

// Servers returns the number of servers (0 on a TCP cluster that has not
// completed AwaitWorkers yet).
func (c *Cluster) Servers() int {
	if c.net == nil {
		return 0
	}
	return c.net.Servers()
}

// SetLocalData installs each server's local dense matrix A^t. All shares
// must have identical shape.
func (c *Cluster) SetLocalData(locals []*Matrix) error {
	return c.SetLocalMats(matrix.AsMats(locals))
}

// SetLocalMats installs each server's local matrix A^t in any backend
// (dense, CSR, or a mix) under an automatic content-derived dataset id,
// and makes that dataset the active one. All shares must have identical
// shape. On a TCP cluster (after AwaitWorkers) each worker receives its
// share as setup traffic — unless the same data is already resident in
// the workers' share cache, in which case zero installation traffic
// moves. The protocols afterwards reach worker shares only through the
// fabric.
func (c *Cluster) SetLocalMats(locals []Mat) error {
	fp, hstates, err := c.validateShares(locals)
	if err != nil {
		return err
	}
	return c.installDataset(context.Background(), fmt.Sprintf("auto-%016x", fp), fp, hstates, locals)
}

// InstallDataset registers the shares under an explicit dataset id and
// makes it the active dataset. Installing an id that is already resident
// with the same data is a cache hit — no setup traffic moves; the same id
// with different data is ErrDatasetConflict. ctx aborts the installation
// between share chunks on a TCP cluster (an aborted install stays
// retryable — the dataset never enters the cache half-shipped).
func (c *Cluster) InstallDataset(ctx context.Context, id string, locals []Mat) error {
	if id == "" {
		return errors.New("repro: dataset id must not be empty")
	}
	fp, hstates, err := c.validateShares(locals)
	if err != nil {
		return err
	}
	return c.installDataset(ctx, id, fp, hstates, locals)
}

// validateShares checks the share roster and returns its content
// fingerprint plus the per-share resumable hash states delta
// installations continue from.
func (c *Cluster) validateShares(locals []Mat) (uint64, []uint64, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return 0, nil, ErrClosed
	}
	if c.net == nil {
		return 0, nil, errors.New("repro: AwaitWorkers before installing data on a TCP cluster")
	}
	if len(locals) != c.net.Servers() {
		return 0, nil, fmt.Errorf("repro: %d shares for %d servers", len(locals), c.net.Servers())
	}
	if locals[0] == nil {
		return 0, nil, fmt.Errorf("%w: the CP share is nil", ErrShapeMismatch)
	}
	n, d := locals[0].Rows(), locals[0].Cols()
	for t, m := range locals {
		if m == nil {
			return 0, nil, fmt.Errorf("%w: server %d share is nil", ErrShapeMismatch, t)
		}
		mn, md := m.Rows(), m.Cols()
		if mn != n || md != d {
			return 0, nil, fmt.Errorf("%w: server %d share is %dx%d, want %dx%d", ErrShapeMismatch, t, mn, md, n, d)
		}
	}
	fp, hstates := fingerprintMats(locals)
	return fp, hstates, nil
}

func (c *Cluster) installDataset(ctx context.Context, id string, fp uint64, hstates []uint64, locals []Mat) error {
	// installMu serializes whole installations: two concurrent installs of
	// the same id must resolve to one registration (or one conflict), not
	// a duplicated registry entry.
	c.installMu.Lock()
	defer c.installMu.Unlock()
	c.mu.Lock()
	if prev, ok := c.datasets[id]; ok {
		if prev.fp != fp {
			c.mu.Unlock()
			return fmt.Errorf("%w: %q", ErrDatasetConflict, id)
		}
		c.active = id // cache hit: just select it
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()

	// One warm sketch store per hosted share, living as long as the
	// registry entry: re-installing the same content is a cache hit that
	// keeps the stores (and their warm sketches) intact.
	stores := make([]*warm.Store, len(locals))
	for t := range stores {
		stores[t] = warm.NewStore(0)
	}
	entry := &datasetEntry{
		id: id, key: datasetKey(id), fp: fp,
		locals: locals,
		rows:   locals[0].Rows(), cols: locals[0].Cols(),
		stores: stores, hstates: hstates,
	}
	if c.coord != nil {
		if err := c.coord.InstallDatasetCtx(ctx, entry.key, locals); err != nil {
			return err
		}
		entry.masked = c.coord.MaskShares(locals)
	}
	c.mu.Lock()
	c.datasets[id] = entry
	c.order = append(c.order, id)
	c.active = id
	c.mu.Unlock()
	return nil
}

// UseDataset selects the installed dataset jobs run against when
// Options.Dataset is empty.
func (c *Cluster) UseDataset(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if _, ok := c.datasets[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDataset, id)
	}
	c.active = id
	return nil
}

// Datasets lists the installed datasets in installation order.
func (c *Cluster) Datasets() []DatasetInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]DatasetInfo, 0, len(c.order))
	for _, id := range c.order {
		e := c.datasets[id]
		out = append(out, DatasetInfo{
			ID: id, Rows: e.rows, Cols: e.cols, Active: id == c.active,
			Fingerprint: e.fp, AppendedRows: e.appended, LastAppend: e.lastDelta,
		})
	}
	return out
}

// datasetKey maps a dataset id to the non-zero wire key the workers cache
// it under (key 0 is the legacy single-tenant slot).
func datasetKey(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	k := h.Sum64()
	if k == 0 {
		k = 0x9E3779B97F4A7C15
	}
	return k
}

// Delta-installation phase tags: the only charged traffic outside job
// sessions, reported by Cluster.Breakdown.
const (
	tagDeltaAppend = "delta/append"
	tagDeltaUpdate = "delta/update"
)

// AppendRows appends delta rows to every share of an installed dataset —
// the streaming entry point of incremental sketch maintenance. rows holds
// one delta share per server (the same roster shape as SetLocalMats),
// each dn×d with d the dataset's column count. Only the delta moves:
// workers fold the rows into their resident shares (warm sketches absorb
// them at the next query), and the dataset's fingerprint advances by hash
// chaining, so a later InstallDataset of the final matrix is recognized
// as already resident. The shipped delta is charged on the cluster ledger
// under "delta/append" — proportional to dn·d, not to the dataset size.
//
// dataset selects the target ("" = the active dataset). An append
// excludes jobs on the same dataset for the duration of the fold, and a
// query after any number of appends is bit-identical — transcript, ledger
// and projection — to the same query after a one-shot install of the
// final matrix.
func (c *Cluster) AppendRows(ctx context.Context, dataset string, rows []Mat) error {
	if ctx == nil {
		ctx = context.Background()
	}
	ds, err := c.deltaTarget(dataset, rows)
	if err != nil {
		return err
	}
	dn, d := rows[0].Rows(), rows[0].Cols()
	if dn == 0 {
		return nil
	}
	c.installMu.Lock()
	defer c.installMu.Unlock()
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if d != ds.cols {
		return fmt.Errorf("%w: delta has %d cols, dataset %q has %d", ErrShapeMismatch, d, ds.id, ds.cols)
	}
	n0 := ds.rows
	// Stage the appended roster and chained states first — AppendRows is
	// pure on the old matrices, so nothing is published until the wire
	// ship below succeeded (a Send error means the transport is down and
	// the cluster is unusable anyway).
	locals := make([]Mat, len(ds.locals))
	states := make([]uint64, len(ds.locals))
	for t, m := range ds.locals {
		nm, err := matrix.AppendRows(m, rows[t])
		if err != nil {
			return err
		}
		locals[t] = nm
		states[t] = shareStreamHash(ds.hstates[t], rows[t], n0)
	}
	for t := 1; t < len(rows); t++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := c.shipAppend(ds.key, t, n0, d, rows[t]); err != nil {
			return err
		}
	}
	// Hosted warm sketches fold lazily: the stores see a grown share at
	// the next query and ingest exactly rows [n0, n0+dn).
	c.publishDelta(ds, locals, n0+dn, states, dn)
	return nil
}

// AppendLocalData is AppendRows for dense delta shares.
func (c *Cluster) AppendLocalData(ctx context.Context, dataset string, rows []*Matrix) error {
	return c.AppendRows(ctx, dataset, matrix.AsMats(rows))
}

// UpdateRows overwrites the idx-selected rows of every share of an
// installed dataset with the given replacement rows — one len(idx)×d
// share per server; duplicate indices resolve last-wins. Workers fold the
// per-coordinate value deltas into their warm sketches eagerly, so the
// next query stays warm. The folded sketches are numerically exact but —
// unlike appends — not bit-identical to a cold rebuild (floating-point
// addition is not associative); mem and TCP clusters still agree with
// each other bit for bit, because both fold the identical delta sequence.
// Charged under "delta/update"; the fingerprint is rechained from the
// updated shares.
func (c *Cluster) UpdateRows(ctx context.Context, dataset string, idx []int, rows []Mat) error {
	if ctx == nil {
		ctx = context.Background()
	}
	ds, err := c.deltaTarget(dataset, rows)
	if err != nil {
		return err
	}
	k, d := rows[0].Rows(), rows[0].Cols()
	if k != len(idx) {
		return fmt.Errorf("%w: %d replacement rows for %d indices", ErrShapeMismatch, k, len(idx))
	}
	if k == 0 {
		return nil
	}
	c.installMu.Lock()
	defer c.installMu.Unlock()
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if d != ds.cols {
		return fmt.Errorf("%w: delta has %d cols, dataset %q has %d", ErrShapeMismatch, d, ds.id, ds.cols)
	}
	n := ds.rows
	for _, i := range idx {
		if i < 0 || i >= n {
			return fmt.Errorf("repro: update index %d outside dataset %q (%d rows)", i, ds.id, n)
		}
	}
	// Chunk exactly as the wire does and fold chunk by chunk, so the CP's
	// warm stores see the same delta sequence the workers' stores see —
	// what keeps mem and TCP sketches bit-identical after an update.
	step := cluster.InstallChunkWords() / (d + 1)
	if step < 1 {
		step = 1
	}
	locals := append([]Mat(nil), ds.locals...)
	for off := 0; off < k; off += step {
		end := off + step
		if end > k {
			end = k
		}
		ii := idx[off:end]
		for t := range locals {
			w := rowWindow(rows[t], off, end)
			js, deltas := ops.UpdateDeltas(locals[t], ii, w)
			nm, err := matrix.UpdateRows(locals[t], ii, w)
			if err != nil {
				return err
			}
			ds.stores[t].FoldUpdate(d, js, deltas)
			locals[t] = nm
		}
		for t := 1; t < len(rows); t++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			f := &comm.Frame{Kind: comm.KindShare, Op: ops.OpUpdateRows, From: comm.CP, To: t,
				Tag: tagDeltaUpdate, Words: ops.UpdateRowsPayload(ds.key, n, d, ii, rowWindow(rows[t], off, end))}
			if err := c.net.ShipCharged(f); err != nil {
				return fmt.Errorf("repro: updating rows on worker %d: %w", t, err)
			}
		}
	}
	// Updated values replace, not extend, the hashed stream — the states
	// are rebuilt from scratch (updates are assumed rare next to appends).
	states := make([]uint64, len(locals))
	for t, m := range locals {
		states[t] = shareStreamHash(fnvOffset64, m, 0)
	}
	c.publishDelta(ds, locals, n, states, 0)
	return nil
}

// deltaTarget resolves a delta installation's dataset and sanity-checks
// the delta roster (one share per server, equal shapes); checks against
// the dataset's own shape happen later under its write lock.
func (c *Cluster) deltaTarget(dataset string, rows []Mat) (*datasetEntry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.net == nil {
		return nil, errors.New("repro: AwaitWorkers before installing deltas on a TCP cluster")
	}
	id := dataset
	if id == "" {
		id = c.active
	}
	if id == "" {
		return nil, ErrNoData
	}
	ds, ok := c.datasets[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, id)
	}
	if len(rows) != c.net.Servers() {
		return nil, fmt.Errorf("repro: %d delta shares for %d servers", len(rows), c.net.Servers())
	}
	for t, m := range rows {
		if m == nil {
			return nil, fmt.Errorf("%w: server %d delta share is nil", ErrShapeMismatch, t)
		}
		if m.Rows() != rows[0].Rows() || m.Cols() != rows[0].Cols() {
			return nil, fmt.Errorf("%w: server %d delta share is %dx%d, want %dx%d",
				ErrShapeMismatch, t, m.Rows(), m.Cols(), rows[0].Rows(), rows[0].Cols())
		}
	}
	return ds, nil
}

// shipAppend ships one share's append delta to its worker, chunked by the
// same payload bound as full installation so any delta encodes under the
// codec frame cap. Each chunk is an independent append continuing at its
// own base row; the frames are charged under tagDeltaAppend — identically
// on mem and TCP fabrics (on mem nothing moves, but the ledger commits).
func (c *Cluster) shipAppend(key uint64, t, n0, d int, delta Mat) error {
	dn := delta.Rows()
	step := cluster.InstallChunkWords() / d
	if step < 1 {
		step = 1
	}
	for off := 0; off < dn; off += step {
		end := off + step
		if end > dn {
			end = dn
		}
		f := &comm.Frame{Kind: comm.KindShare, Op: ops.OpAppendRows, From: comm.CP, To: t,
			Tag: tagDeltaAppend, Words: ops.AppendRowsPayload(key, n0+off, d, rowWindow(delta, off, end))}
		if err := c.net.ShipCharged(f); err != nil {
			return fmt.Errorf("repro: appending rows on worker %d: %w", t, err)
		}
	}
	return nil
}

// publishDelta installs a delta's outcome on the registry entry. The
// scalar metadata is republished under c.mu so listings (which hold only
// c.mu) never race the swap; callers hold installMu and the entry's
// write lock.
func (c *Cluster) publishDelta(ds *datasetEntry, locals []Mat, n int, states []uint64, appended int) {
	var masked []Mat
	if c.coord != nil {
		masked = c.coord.MaskShares(locals)
	}
	c.mu.Lock()
	ds.locals = locals
	ds.masked = masked
	ds.rows = n
	ds.hstates = states
	ds.fp = combineFingerprint(n, ds.cols, states)
	ds.appended += appended
	ds.lastDelta = time.Now()
	c.mu.Unlock()
}

// rowWindow returns rows [lo,hi) of m — m itself when the window covers
// the whole matrix, a dense copy otherwise (only multi-chunk deltas pay
// for it).
func rowWindow(m Mat, lo, hi int) Mat {
	if lo == 0 && hi == m.Rows() {
		return m
	}
	w := matrix.NewDense(hi-lo, m.Cols())
	row := make([]float64, m.Cols())
	for i := lo; i < hi; i++ {
		for j := range row {
			row[j] = 0
		}
		m.RowNNZ(i, func(j int, v float64) { row[j] = v })
		w.SetRow(i-lo, row)
	}
	return w
}

// WarmStats reports the warm sketch store counters of a dataset's hosted
// shares ("" = the active dataset), summed across servers. On a TCP
// cluster only the CP's own store is hosted here — the workers keep
// theirs share-side, so remote hits are not visible in these counters.
type WarmStats struct {
	// Hits counts sketch builds answered from a warm entry (including
	// fold-forward serves after appends); Misses counts cold builds.
	Hits, Misses int64
	// FoldedRows counts appended rows ingested via the warm fold path —
	// the work a cold rebuild would have multiplied by the full height.
	FoldedRows int64
	// Evictions counts warm entries dropped by the store byte budget.
	Evictions int64
}

// WarmStats sums the named dataset's hosted warm-store counters.
func (c *Cluster) WarmStats(dataset string) (WarmStats, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return WarmStats{}, ErrClosed
	}
	id := dataset
	if id == "" {
		id = c.active
	}
	ds, ok := c.datasets[id]
	c.mu.Unlock()
	if !ok {
		return WarmStats{}, fmt.Errorf("%w: %q", ErrUnknownDataset, id)
	}
	var ws WarmStats
	for _, st := range ds.stores {
		s := st.Stats()
		ws.Hits += s.Hits
		ws.Misses += s.Misses
		ws.FoldedRows += s.FoldedRows
		ws.Evictions += s.Evictions
	}
	return ws, nil
}

// FNV-1a parameters, inlined so per-share hash states are plain uint64
// values that delta installations can resume (hash/fnv's states are not
// extractable).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvWord folds one little-endian 64-bit word into an FNV-1a state,
// byte-for-byte what hash/fnv's New64a would do.
func fnvWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime64
	}
	return h
}

// shareStreamHash folds the nonzero stream of m into state as if m's rows
// were rows [base, base+m.Rows()) of the share — the absolute row index
// is what gets hashed, which makes the state resumable: appending rows
// continues the stream exactly where the previous installation stopped.
func shareStreamHash(state uint64, m Mat, base int) uint64 {
	for i, dn := 0, m.Rows(); i < dn; i++ {
		ai := uint64(base + i)
		m.RowNNZ(i, func(j int, v float64) {
			state = fnvWord(state, ai)
			state = fnvWord(state, uint64(j))
			state = fnvWord(state, math.Float64bits(v))
		})
	}
	return state
}

// combineFingerprint derives the roster fingerprint from the current
// shape and the per-share stream states. Shape lives here, outside the
// resumable states, precisely so appends (which change n) can rechain.
func combineFingerprint(n, d int, states []uint64) uint64 {
	h := fnvWord(fnvOffset64, uint64(len(states)))
	for _, st := range states {
		h = fnvWord(h, uint64(n))
		h = fnvWord(h, uint64(d))
		h = fnvWord(h, st)
	}
	return h
}

// fingerprintMats hashes the logical content of a share roster — shape
// plus the backend-invariant nonzero stream — so two installs of the same
// data are recognized as one dataset regardless of storage backend. It
// also returns the per-share stream states, which delta installations
// resume: fp(install A; append Δ) == fp(install [A;Δ]) exactly.
func fingerprintMats(locals []Mat) (uint64, []uint64) {
	states := make([]uint64, len(locals))
	for t, m := range locals {
		states[t] = shareStreamHash(fnvOffset64, m, 0)
	}
	return combineFingerprint(locals[0].Rows(), locals[0].Cols(), states), states
}

// Words returns the total communication consumed so far: the root
// fabric's ledger plus every finished job's session ledger.
func (c *Cluster) Words() int64 {
	if c.net == nil {
		return 0
	}
	c.mu.Lock()
	jw := c.jobWords
	c.mu.Unlock()
	return c.net.Words() + jw
}

// Breakdown returns communication per protocol phase, aggregated across
// the root fabric and every finished job.
func (c *Cluster) Breakdown() map[string]int64 {
	if c.net == nil {
		return nil
	}
	out := c.net.Breakdown()
	c.mu.Lock()
	for tag, w := range c.jobTags {
		out[tag] += w
	}
	c.mu.Unlock()
	return out
}

// ResetCommunication zeroes the communication counters — the root
// fabric's ledger and the accumulated finished-job tallies. Queued frames
// and failure poison on the fabric are only drained when no jobs are in
// flight: a full transport drain under live sessions would destroy their
// undelivered frames and hang them.
func (c *Cluster) ResetCommunication() {
	if c.net != nil {
		// The idle check and the transport drain happen under the engine
		// lock, so no job can be admitted between them and lose its
		// queued frames to the drain.
		if !c.eng.ifIdle(c.net.Reset) {
			c.net.ResetLedger()
		}
	}
	c.mu.Lock()
	c.jobWords, c.jobBytes = 0, 0
	c.jobTags = make(map[string]int64)
	c.mu.Unlock()
}

// PCA runs the distributed additive-error PCA protocol (Algorithm 1 with
// the appropriate sampler) over the implicit matrix f(Σ_t A^t). It is a
// blocking thin wrapper over the job engine — the job runs in its own
// comm session like any Submit job — that uses the configured seed as the
// protocol seed directly (Submit derives per-job seeds instead), so
// results are reproducible from the options alone. At queue capacity PCA
// waits for space rather than rejecting.
//
// ctx governs the whole call: canceling it (or exceeding its deadline, or
// a WithDeadline budget) stops the protocol before its next round and
// returns an error matching both ErrCanceled and the ctx cause.
func (c *Cluster) PCA(ctx context.Context, f Func, opts ...Option) (*Result, error) {
	j, err := c.prepare(ctx, f, buildOptions(opts), false)
	if err != nil {
		return nil, err
	}
	if err := c.eng.submit(ctx, j, true); err != nil {
		j.release()
		return nil, err
	}
	res, err := j.Wait(ctx)
	if err != nil && !errors.Is(err, ErrCanceled) && ctx.Err() != nil {
		// The ctx fired while the job was mid-run: the same ctx cancels
		// the job, which stops at its next round — wait for that terminal
		// state so the caller sees the documented ErrCanceled-wrapped
		// error instead of a bare ctx error from the abandoned wait.
		res, err = j.Wait(context.Background())
	}
	return res, err
}

// Submit enqueues a PCA query on the job engine and returns immediately.
// The job runs concurrently with other jobs — each inside its own comm
// session on the shared fabric — against the dataset named by WithDataset
// (empty = the active dataset). Its protocol seed is derived from
// (seed, job id), so a job's result and per-job communication transcript
// are reproducible from those two numbers alone, no matter how many
// tenants ran beside it. When the admission queue is at capacity Submit
// returns ErrJobQueueFull.
//
// ctx governs the job's whole lifetime, queued and running: when it fires
// the job is canceled exactly as Job.Cancel would, stopping before its
// next protocol round.
func (c *Cluster) Submit(ctx context.Context, f Func, opts ...Option) (*Job, error) {
	j, err := c.prepare(ctx, f, buildOptions(opts), true)
	if err != nil {
		return nil, err
	}
	if err := c.eng.submit(ctx, j, false); err != nil {
		j.release()
		return nil, err
	}
	return j, nil
}

// ConfigureEngine bounds the job engine (runner pool size and admission
// queue depth). Valid only before the first job is submitted.
func (c *Cluster) ConfigureEngine(cfg EngineConfig) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()
	return c.eng.configure(cfg)
}

// prepare validates a query and builds its Job record, deriving the
// job's private context from the caller's ctx (plus the WithDeadline
// budget when set).
func (c *Cluster) prepare(ctx context.Context, f Func, opts Options, deriveSeed bool) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.K < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrInvalidRank, opts.K)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("%w (got %d)", ErrInvalidWorkers, opts.Workers)
	}
	if opts.Eps <= 0 {
		opts.Eps = 0.1
	}
	if c.coord != nil && opts.Backend != BackendAuto {
		return nil, ErrTCPBackend
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.net == nil {
		return nil, errors.New("repro: AwaitWorkers before submitting jobs on a TCP cluster")
	}
	id := opts.Dataset
	if id == "" {
		id = c.active
	}
	if id == "" {
		return nil, ErrNoData
	}
	ds, ok := c.datasets[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, id)
	}
	c.nextJobID++
	seed := opts.Seed
	if seed == 0 {
		seed = 0x5EED
	}
	if deriveSeed {
		seed = jobSeed(seed, c.nextJobID)
	}
	j := &Job{
		id:      c.nextJobID,
		cluster: c,
		f:       f,
		opts:    opts,
		seed:    seed,
		ds:      ds,
		done:    make(chan struct{}),
		events:  make(chan RoundEvent, roundEventBuffer),
	}
	if opts.Deadline > 0 {
		j.ctx, j.cancelCtx = context.WithTimeout(ctx, opts.Deadline)
	} else {
		j.ctx, j.cancelCtx = context.WithCancel(ctx)
	}
	// A fired job context cancels the job wherever it is — still queued
	// (removed and failed immediately) or running (stopped at the next
	// protocol round). stopWatch releases the watcher on normal completion.
	j.stopWatch = context.AfterFunc(j.ctx, func() { j.Cancel() })
	return j, nil
}

// runJob executes one job on a runner goroutine and publishes its
// outcome. A job whose context already fired never starts; one canceled
// mid-run finishes as JobCanceled with an ErrCanceled-wrapped cause.
//
// A job interrupted by a worker death (ErrWorkerLost) is resubmitted at
// the queue head with its progress rewound, up to maxJobAttempts runs
// total. The job keeps its id — and therefore its derived seed — so the
// retried run's projection and transcript are bit-identical to an
// undisturbed run. On membership clusters the queue holds until the dead
// slot is re-placed; a job that exhausts its attempts surfaces the
// ErrWorkerLost-wrapped error through Wait.
func (c *Cluster) runJob(j *Job) {
	if cause := j.ctx.Err(); cause != nil {
		j.finish(nil, canceledErr(cause), JobCanceled)
		return
	}
	j.setRunning()
	res, err := c.execute(j)
	if err != nil && errors.Is(err, ErrWorkerLost) && j.ctx.Err() == nil {
		j.attempts++
		if j.attempts < maxJobAttempts {
			c.pauseForFailover()
			// Give the fabric a breath, then reconcile again. On the
			// in-process fabric (no detector or join loop) the breath is
			// for the healer: a synthetic link failure (MemTransport.
			// FailLink) heals only by an explicit HealLink. On TCP the
			// job can observe the poisoned link before the link-down
			// handler marks the slot dead — the reconcile above then saw
			// a whole table and left the queue open, so without the
			// second look the requeued job would burn its remaining
			// attempts against the dead fabric instead of waiting for
			// the re-placement.
			time.Sleep(failoverBreath)
			c.pauseForFailover()
			j.resetForRetry()
			if c.eng.requeueFront(j) {
				return
			}
			j.finish(nil, ErrClosed, JobCanceled)
			return
		}
	}
	state := JobDone
	if err != nil && errors.Is(err, ErrCanceled) {
		state = JobCanceled
	}
	j.finish(res, err, state)
}

// canceledErr wraps a context cause so the result matches both
// ErrCanceled and the cause (context.Canceled or
// context.DeadlineExceeded) under errors.Is.
func canceledErr(cause error) error {
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// teardownSession fully ends one session: on a TCP cluster the
// abort/end handshake (abort first when the job's ctx fired, so workers
// discard the session's still-queued ops before the close drains and
// acks the teardown), then the session close that recycles its id.
// bound reports whether the session completed OpenSession — pool hits
// always have.
func (c *Cluster) teardownSession(sess *comm.Session, bound, aborted bool) {
	if c.coord != nil && bound {
		if aborted {
			c.coord.AbortSession(sess.ID())
		}
		c.coord.CloseSession(sess.ID())
	}
	sess.Close()
}

// foldSession folds a finished run's session ledger into the cluster
// totals — whether the job succeeded, failed or was canceled, the words
// it moved were moved. Runs before a pooled session is recycled (which
// zeroes the ledger), so every run is counted exactly once.
func (c *Cluster) foldSession(sess *comm.Session) {
	c.mu.Lock()
	c.jobWords += sess.Words()
	c.jobBytes += sess.Bytes()
	for tag, w := range sess.Breakdown() {
		c.jobTags[tag] += w
	}
	c.mu.Unlock()
}

// execute runs the job's protocol inside a comm session bound to its
// dataset — a pooled one when a previous job on the same dataset
// finished cleanly (skipping the bind/end handshake entirely), a fresh
// one otherwise — folding the session's ledger into the cluster totals.
// Cancellation teardown is what keeps the fabric clean for the next
// tenant: on TCP the workers are told to discard the session's queued
// ops (AbortSession), and the session close drains every stale reply
// before the session id can be recycled — so a job canceled midway
// leaves no frame behind, never enters the pool, and the next job's
// transcript is bit-identical to a fresh cluster's.
func (c *Cluster) execute(j *Job) (*Result, error) {
	ctx := j.ctx
	t0 := time.Now()
	sess, expired := c.pool.acquire(j.ds.key)
	for _, e := range expired {
		// Idle eviction: TTL-expired sessions get the full teardown
		// handshake so their worker-side runners and ids are released.
		c.teardownSession(e, true, false)
	}
	hit := sess != nil
	if !hit {
		var err error
		sess, err = c.net.NewSession()
		if err != nil {
			return nil, err
		}
	}
	if j.opts.BatchSize != 0 {
		// A wire-framing knob only: the session's ledger and transcript
		// are identical at every batch size.
		sess.SetBatchSize(j.opts.BatchSize)
	}
	sess.OnRound(func(seq int64, tag string) {
		j.noteRound(seq, tag, sess.Words())
	})
	// Delta installation excludes protocol execution: the job holds the
	// dataset's read lock for its whole run, so appends and updates land
	// strictly between jobs and the warm stores only ever see a share at
	// one consistent height per run. (Pooled sessions park without the
	// lock; their worker bindings resolve the live share per op, so a
	// delta landing between jobs is seen in full by the next one.)
	j.ds.mu.RLock()
	bound := hit
	var locals []Mat
	if c.coord != nil {
		if !hit {
			if err := c.coord.OpenSession(sess.ID(), j.ds.key); err != nil {
				j.ds.mu.RUnlock()
				c.foldSession(sess)
				c.teardownSession(sess, false, false)
				return nil, err
			}
			bound = true
		}
		locals = warmLocals(j.ds.masked, j.ds.stores)
	} else {
		locals = warmLocals(j.opts.Backend.Apply(j.ds.locals), j.ds.stores)
	}
	j.bindNS.Store(time.Since(t0).Nanoseconds())

	tRun := time.Now()
	res, err := runPCA(ctx, sess.Network, locals, j.f, j.opts, j.seed)
	j.protoNS.Store(time.Since(tRun).Nanoseconds())
	j.ds.mu.RUnlock()
	c.foldSession(sess)

	tEnd := time.Now()
	if err == nil && ctx.Err() == nil && c.pool.release(j.ds.key, sess) {
		// Clean completion, session recycled into the pool: the next job
		// on this dataset skips the whole setup/teardown handshake. The
		// session now belongs to the pool — hands off.
	} else {
		c.teardownSession(sess, bound, ctx.Err() != nil)
	}
	j.teardownNS.Store(time.Since(tEnd).Nanoseconds())

	if err != nil {
		if cause := ctx.Err(); cause != nil {
			return nil, canceledErr(cause)
		}
		return nil, err
	}
	res.JobID = j.id
	return res, nil
}

// warmLocals wraps every hosted share with its dataset's warm sketch
// store, so the protocol's sketch builders serve repeated jobs from warm
// sketches and fold forward only the rows appended since the last one.
// The wrapping is communication-invisible: warm and cold builds produce
// bit-identical sketches, only the ingestion work differs.
func warmLocals(locals []Mat, stores []*warm.Store) []Mat {
	out := make([]Mat, len(locals))
	for t, m := range locals {
		if m == nil || t >= len(stores) || stores[t] == nil {
			out[t] = m
			continue
		}
		out[t] = warm.Wrap(m, stores[t])
	}
	return out
}

// runPCA drives the protocol pipeline (sampler construction, Algorithm 1,
// result assembly) against the given ledger — the single implementation
// behind both PCA and Submit. ctx threads down into every protocol layer
// (sampler sketching, heavy-hitter rounds, per-draw row collection) with
// abort checkpoints between rounds.
func runPCA(ctx context.Context, net *comm.Network, locals []Mat, f Func, opts Options, seed int64) (*Result, error) {
	n, d := locals[0].Rows(), locals[0].Cols()
	start := net.Snapshot()
	bytesStart := net.Bytes()
	tagStart := net.Breakdown()

	var sampler core.RowSampler
	if f.z == nil {
		u, err := samplers.NewUniform(net, locals, seed)
		if err != nil {
			return nil, err
		}
		sampler = u
	} else {
		if err := fn.CheckPropertyP(f.z, 1e3, 4096); err != nil {
			return nil, err
		}
		// The sampler's sketching traffic is fitted to a budget: the
		// caller's cap, or by default the size of the implicit matrix (so
		// sketching never dominates what centralizing would have cost).
		budget := opts.SamplerBudget
		if budget <= 0 {
			budget = int64(n * d)
		}
		p := zsampler.ParamsForBudget(budget, net.Servers(), n*d, seed)
		p.Workers = opts.Workers
		zr, err := samplers.NewZRow(ctx, net, locals, f.z, p)
		if err != nil {
			return nil, err
		}
		sampler = zr
	}
	res, err := core.Run(ctx, net, sampler, f.f, d, core.Options{
		K: opts.K, Eps: opts.Eps, R: opts.Rows, Boost: opts.Boost,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Projection:  res.P,
		Basis:       res.V,
		SampledRows: res.Rows,
		// Words covers the whole protocol from this call's start, including
		// the sampler's sketching phase (which runs before Algorithm 1's
		// row collection).
		Words:     net.Since(start),
		Bytes:     net.Bytes() - bytesStart,
		Breakdown: breakdownDelta(net.Breakdown(), tagStart),
	}, nil
}

// breakdownDelta subtracts a per-tag snapshot so Result.Breakdown covers
// exactly the run it accompanies (Words and Bytes are deltas too; a
// reused cluster accumulates across runs otherwise).
func breakdownDelta(now, start map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(now))
	for tag, w := range now {
		if d := w - start[tag]; d != 0 {
			out[tag] = d
		}
	}
	return out
}

// ImplicitMatrix materializes f(Σ_t A^t) of the active dataset centrally —
// useful for validation and small-scale ground truth, and deliberately
// *not* part of the protocol (it is exactly the thing the protocol
// avoids).
func (c *Cluster) ImplicitMatrix(f Func) (*Matrix, error) {
	c.mu.Lock()
	ds := c.datasets[c.active]
	c.mu.Unlock()
	if ds == nil {
		return nil, errors.New("repro: SetLocalData before ImplicitMatrix")
	}
	ds.mu.RLock()
	locals := ds.locals
	ds.mu.RUnlock()
	return matrix.SumMats(locals).Apply(f.f.Apply), nil
}

// ProjectionError2 returns ‖A − AP‖_F² via the matrix Pythagorean theorem.
func ProjectionError2(A, P *Matrix) float64 { return matrix.ProjectionError2(A, P) }

// BestRankKError2 returns the optimum ‖A − [A]_k‖_F².
func BestRankKError2(A *Matrix, k int) float64 { return matrix.BestRankKError2(A, k) }

// RFFMap re-exports the random Fourier feature map construction for
// building kernel PCA pipelines on clusters.
type RFFMap = rff.Map

// NewRFFMap samples a Gaussian random Fourier feature map with d features
// for m-dimensional inputs and kernel bandwidth sigma.
func NewRFFMap(m, d int, sigma float64, seed int64) (*RFFMap, error) {
	return rff.NewMap(m, d, sigma, seed)
}

// ExpandRFF projects each server's local raw share through the feature map
// and folds in the phase shares, producing the local matrices for a
// Cosine() PCA.
func ExpandRFF(locals []*Matrix, mp *RFFMap) []*Matrix {
	return rff.DistributedExpand(locals, mp)
}
