// Package repro is a Go implementation of "Distributed Low Rank
// Approximation of Implicit Functions of a Matrix" (Woodruff & Zhong,
// ICDE 2016). It computes additive-error low rank approximations (PCA) of
// a matrix A that exists only implicitly across s servers:
//
//	A[i][j] = f(Σ_t A^t[i][j]),
//
// where server t holds A^t and f is an entrywise function — the paper's
// generalized partition model. Supported applications include PCA of
// Gaussian random Fourier feature expansions, softmax (generalized mean)
// combination across servers, and robust PCA via M-estimator ψ-functions.
//
// The package exposes the high-level protocol; the building blocks live in
// internal packages: internal/core (the Algorithm 1 framework),
// internal/zsampler (the generalized sampler), internal/hh (distributed
// heavy hitters), internal/sketch (CountSketch/AMS), internal/matrix
// (storage backends — dense and sparse CSR — plus linear algebra),
// internal/comm (the accounting network), and internal/lowerbound (the
// paper's hardness reductions, executable).
//
// Quick start:
//
//	cluster := repro.NewCluster(10)
//	cluster.SetLocalData(shares)                       // one matrix per server
//	res, err := cluster.PCA(repro.Huber(20), repro.Options{K: 10, Eps: 0.1})
//	// res.Projection is the d×d rank-k projection; res.Words the comm cost.
package repro

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fn"
	"repro/internal/matrix"
	"repro/internal/rff"
	"repro/internal/samplers"
	"repro/internal/zsampler"
)

// Typed errors for invalid cluster construction and PCA options; callers
// match them with errors.Is.
var (
	// ErrInvalidServers: cluster constructed with fewer than one server.
	ErrInvalidServers = errors.New("repro: cluster needs at least one server")
	// ErrInvalidRank: Options.K below 1.
	ErrInvalidRank = errors.New("repro: Options.K must be at least 1")
	// ErrInvalidWorkers: Options.Workers below 0.
	ErrInvalidWorkers = errors.New("repro: Options.Workers must not be negative")
	// ErrShapeMismatch: per-server shares with inconsistent shapes.
	ErrShapeMismatch = errors.New("repro: share shapes do not match")
	// ErrNoData: PCA before SetLocalData.
	ErrNoData = errors.New("repro: SetLocalData before running a protocol")
	// ErrTCPBackend: per-run backend conversion on a TCP cluster (the
	// shares were already installed on the workers; convert first).
	ErrTCPBackend = errors.New("repro: storage backend is fixed at share installation on TCP clusters")
)

// Matrix is the dense matrix type used throughout the public API.
type Matrix = matrix.Dense

// Mat is the read-only matrix interface the protocols consume; both the
// dense Matrix and the sparse CSR backend satisfy it. Results are
// bit-identical across backends for the same logical matrix.
type Mat = matrix.Mat

// CSR is the compressed-sparse-row matrix backend: per-row sorted
// (column, value) runs, costing O(nnz) on the protocols' per-row hot paths
// where the dense backend costs O(d).
type CSR = matrix.CSR

// Triple is one (row, col, value) entry for sparse construction.
type Triple = matrix.Triple

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix { return matrix.NewDense(r, c) }

// FromRows builds a matrix from rows, copying them.
func FromRows(rows [][]float64) *Matrix { return matrix.FromRows(rows) }

// NewCSR builds an r×c sparse matrix from coordinate triples
// (deterministically: duplicates are summed, zeros dropped).
func NewCSR(r, c int, triples []Triple) *CSR { return matrix.NewCSR(r, c, triples) }

// ToCSR compresses any matrix to the CSR backend.
func ToCSR(m Mat) *CSR { return matrix.ToCSR(m) }

// ToDense materializes any matrix as a dense Matrix.
func ToDense(m Mat) *Matrix { return matrix.ToDense(m) }

// Func pairs the entrywise f with the sampling weight z the protocol needs.
// Construct instances with Identity, AbsPower, SoftmaxGM, Huber, L1L2 or
// Fair; or adapt your own with Custom.
type Func struct {
	f fn.Func
	z fn.ZFunc // nil ⇒ uniform row sampling
}

// Name reports the function's display name.
func (f Func) Name() string { return f.f.Name() }

// Identity is plain distributed PCA of the summed matrix (f(x) = x).
func Identity() Func { return Func{f: fn.Identity{}, z: fn.Identity{}} }

// AbsPower is f(x) = |x|^p.
func AbsPower(p float64) Func { return Func{f: fn.AbsPower{P: p}, z: fn.AbsPower{P: p}} }

// SoftmaxGM is the softmax / generalized-mean combination with exponent p:
// the implicit entry is GM(|M¹_ij|,…,|Mˢ_ij|) when each server prepares its
// share with PrepareGM. Large p approximates an entrywise max.
func SoftmaxGM(p float64) Func { return Func{f: fn.GM{P: p}, z: fn.GM{P: p}} }

// Huber caps implicit entries at ±k via the Huber ψ-function (robust PCA).
func Huber(k float64) Func { return Func{f: fn.Huber{K: k}, z: fn.Huber{K: k}} }

// L1L2 applies the L1−L2 M-estimator ψ-function entrywise.
func L1L2() Func { return Func{f: fn.L1L2{}, z: fn.L1L2{}} }

// Fair applies the "Fair" M-estimator ψ-function with scale c entrywise.
func Fair(c float64) Func { return Func{f: fn.Fair{C: c}, z: fn.Fair{C: c}} }

// UniformRows declares that rows of f(ΣA^t) have near-equal norms, so
// uniform sampling is valid — the situation of random Fourier feature
// expansions. f is applied entrywise; no weight function is needed.
func UniformRows(f func(float64) float64, name string) Func {
	return Func{f: customF{fn: f, name: name}}
}

// Cosine is the √2·cos(x) nonlinearity of Gaussian random Fourier features
// with uniform row sampling.
func Cosine() Func { return Func{f: fn.SqrtTwoCos{}} }

// Custom adapts a caller-supplied f and z. z must satisfy property P
// (validated on first use); pass zNil = true to request uniform sampling.
func Custom(f fn.Func, z fn.ZFunc) Func { return Func{f: f, z: z} }

type customF struct {
	fn   func(float64) float64
	name string
}

func (c customF) Name() string            { return c.name }
func (c customF) Apply(x float64) float64 { return c.fn(x) }

// PrepareGM converts a raw local matrix into the share server t must hold
// for the SoftmaxGM model: entry ← |entry|^p / s.
func PrepareGM(local *Matrix, p float64, s int) *Matrix {
	g := fn.GM{P: p}
	return local.Apply(func(x float64) float64 { return g.Prepare(x, s) })
}

// Backend selects the storage representation of the per-server shares for
// the duration of a PCA run. The protocol's result and communication
// transcript are identical under every backend; the choice trades memory
// and per-row work (CSR pays O(nnz), dense pays O(d)).
type Backend = matrix.Backend

// BackendAuto (the zero value) keeps the shares as installed; the others
// convert for the run.
const (
	BackendAuto  = matrix.BackendAuto
	BackendDense = matrix.BackendDense
	BackendCSR   = matrix.BackendCSR
)

// Options configures a PCA run.
type Options struct {
	// K is the target rank (required).
	K int
	// Eps is the additive error parameter ε (default 0.1).
	Eps float64
	// Rows overrides the sample count r (default ⌈4k²/ε²⌉).
	Rows int
	// Boost repeats the protocol, keeping the best projection by captured
	// energy (default 1).
	Boost int
	// SamplerBudget caps the words the generalized sampler's sketching may
	// use; 0 accepts the default configuration.
	SamplerBudget int64
	// Seed fixes all randomness (0 uses a fixed default for
	// reproducibility).
	Seed int64
	// Workers bounds the worker pool the generalized sampler's sketching
	// phase fans out on (0 or 1 = sequential). The protocol's result and
	// communication transcript are identical at any worker count.
	Workers int
	// Backend converts the shares' storage representation for this run
	// (BackendAuto keeps them as installed). Results are identical under
	// every backend.
	Backend Backend
}

// Result is the outcome of a distributed PCA.
type Result struct {
	// Projection is the d×d rank-k projection matrix P; AP approximates A.
	Projection *Matrix
	// Basis is the d×k orthonormal basis of the projected subspace.
	Basis *Matrix
	// SampledRows are the row indices the protocol drew (with repetition).
	SampledRows []int
	// Words is the total communication in 64-bit words.
	Words int64
	// Bytes is the communication as encoded on the wire — every payload
	// serialized through the typed frame codec — headers included. The
	// fabric guarantees Bytes == 8·Words + header overhead per phase.
	Bytes int64
	// Breakdown reports words per protocol phase, for this run only (a
	// reused cluster's cumulative tallies live on Cluster.Breakdown).
	Breakdown map[string]int64
}

// Cluster is the paper's star network of s servers with exact
// communication accounting. An in-process cluster (NewCluster) hosts
// every server in this process over the in-memory transport; a TCP
// cluster (ListenCluster) hosts only the CP here and drives one worker
// process per remaining server — same protocols, same transcripts, real
// wire.
type Cluster struct {
	net    *comm.Network
	locals []Mat
	// coord is non-nil for TCP clusters; masked is the protocol-visible
	// view of the shares there (CP's own share only — worker shares are
	// reachable exclusively through the fabric).
	coord  *cluster.Coordinator
	masked []Mat
}

// NewCluster creates an in-process cluster of s servers (server 0 is the
// CP).
func NewCluster(s int) (*Cluster, error) {
	if s < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrInvalidServers, s)
	}
	return &Cluster{net: comm.NewNetwork(s)}, nil
}

// ListenCluster starts the coordinator of a multi-process cluster: it
// listens on addr (use "127.0.0.1:0" for an ephemeral loopback port) for
// s−1 workers to join (JoinWorker or cmd/dlra-worker). Call AwaitWorkers
// before installing data.
func ListenCluster(s int, addr string) (*Cluster, error) {
	if s < 2 {
		return nil, fmt.Errorf("%w (a TCP cluster needs at least 2, got %d)", ErrInvalidServers, s)
	}
	coord, err := cluster.Listen(s, addr)
	if err != nil {
		return nil, err
	}
	return &Cluster{coord: coord}, nil
}

// Addr returns the address workers should join (TCP clusters only).
func (c *Cluster) Addr() string {
	if c.coord == nil {
		return ""
	}
	return c.coord.Addr()
}

// AwaitWorkers blocks until every worker has joined and handshaked, then
// brings up the remote-aware fabric (TCP clusters only).
func (c *Cluster) AwaitWorkers(timeout time.Duration) error {
	if c.coord == nil {
		return errors.New("repro: AwaitWorkers on an in-process cluster")
	}
	if err := c.coord.AwaitWorkers(timeout); err != nil {
		return err
	}
	c.net = c.coord.Network()
	return nil
}

// Close shuts down a TCP cluster's workers and sockets (no-op for
// in-process clusters).
func (c *Cluster) Close() error {
	if c.coord == nil {
		return nil
	}
	return c.coord.Close()
}

// JoinWorker runs a worker process's serve loop: dial the coordinator
// (retrying for up to wait), host the share it installs, execute protocol
// ops against it until the coordinator shuts the cluster down.
func JoinWorker(addr string, wait time.Duration) error {
	return cluster.Dial(addr, wait)
}

// Servers returns the number of servers (0 on a TCP cluster that has not
// completed AwaitWorkers yet).
func (c *Cluster) Servers() int {
	if c.net == nil {
		return 0
	}
	return c.net.Servers()
}

// SetLocalData installs each server's local dense matrix A^t. All shares
// must have identical shape.
func (c *Cluster) SetLocalData(locals []*Matrix) error {
	return c.SetLocalMats(matrix.AsMats(locals))
}

// SetLocalMats installs each server's local matrix A^t in any backend
// (dense, CSR, or a mix). All shares must have identical shape. On a TCP
// cluster (after AwaitWorkers) each worker receives its share as setup
// traffic; the protocols afterwards reach it only through the fabric.
func (c *Cluster) SetLocalMats(locals []Mat) error {
	if c.net == nil {
		return errors.New("repro: AwaitWorkers before installing data on a TCP cluster")
	}
	if len(locals) != c.net.Servers() {
		return fmt.Errorf("repro: %d shares for %d servers", len(locals), c.net.Servers())
	}
	if locals[0] == nil {
		return fmt.Errorf("%w: the CP share is nil", ErrShapeMismatch)
	}
	n, d := locals[0].Rows(), locals[0].Cols()
	for t, m := range locals {
		if m == nil {
			return fmt.Errorf("%w: server %d share is nil", ErrShapeMismatch, t)
		}
		mn, md := m.Rows(), m.Cols()
		if mn != n || md != d {
			return fmt.Errorf("%w: server %d share is %dx%d, want %dx%d", ErrShapeMismatch, t, mn, md, n, d)
		}
	}
	c.locals = locals
	if c.coord != nil {
		if err := c.coord.InstallShares(locals); err != nil {
			return err
		}
		c.masked = c.coord.MaskShares(locals)
	}
	return nil
}

// Words returns the total communication consumed so far.
func (c *Cluster) Words() int64 {
	if c.net == nil {
		return 0
	}
	return c.net.Words()
}

// Breakdown returns communication per protocol phase.
func (c *Cluster) Breakdown() map[string]int64 {
	if c.net == nil {
		return nil
	}
	return c.net.Breakdown()
}

// ResetCommunication zeroes the communication counters (and drops any
// queued frames and failure poison on the fabric).
func (c *Cluster) ResetCommunication() {
	if c.net != nil {
		c.net.Reset()
	}
}

// PCA runs the distributed additive-error PCA protocol (Algorithm 1 with
// the appropriate sampler) over the implicit matrix f(Σ_t A^t).
func (c *Cluster) PCA(f Func, opts Options) (*Result, error) {
	if c.locals == nil {
		return nil, ErrNoData
	}
	if opts.K < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrInvalidRank, opts.K)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("%w (got %d)", ErrInvalidWorkers, opts.Workers)
	}
	if opts.Eps <= 0 {
		opts.Eps = 0.1
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 0x5EED
	}
	var locals []Mat
	if c.coord != nil {
		if opts.Backend != BackendAuto {
			return nil, ErrTCPBackend
		}
		locals = c.masked
	} else {
		locals = opts.Backend.Apply(c.locals)
	}
	n, d := locals[0].Rows(), locals[0].Cols()
	start := c.net.Snapshot()
	bytesStart := c.net.Bytes()
	tagStart := c.net.Breakdown()

	var sampler core.RowSampler
	if f.z == nil {
		u, err := samplers.NewUniform(c.net, locals, seed)
		if err != nil {
			return nil, err
		}
		sampler = u
	} else {
		if err := fn.CheckPropertyP(f.z, 1e3, 4096); err != nil {
			return nil, err
		}
		// The sampler's sketching traffic is fitted to a budget: the
		// caller's cap, or by default the size of the implicit matrix (so
		// sketching never dominates what centralizing would have cost).
		budget := opts.SamplerBudget
		if budget <= 0 {
			budget = int64(n * d)
		}
		p := zsampler.ParamsForBudget(budget, c.net.Servers(), n*d, seed)
		p.Workers = opts.Workers
		zr, err := samplers.NewZRow(c.net, locals, f.z, p)
		if err != nil {
			return nil, err
		}
		sampler = zr
	}
	res, err := core.Run(c.net, sampler, f.f, d, core.Options{
		K: opts.K, Eps: opts.Eps, R: opts.Rows, Boost: opts.Boost,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Projection:  res.P,
		Basis:       res.V,
		SampledRows: res.Rows,
		// Words covers the whole protocol from this call's start, including
		// the sampler's sketching phase (which runs before Algorithm 1's
		// row collection).
		Words:     c.net.Since(start),
		Bytes:     c.net.Bytes() - bytesStart,
		Breakdown: breakdownDelta(c.net.Breakdown(), tagStart),
	}, nil
}

// breakdownDelta subtracts a per-tag snapshot so Result.Breakdown covers
// exactly the run it accompanies (Words and Bytes are deltas too; a
// reused cluster accumulates across runs otherwise).
func breakdownDelta(now, start map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(now))
	for tag, w := range now {
		if d := w - start[tag]; d != 0 {
			out[tag] = d
		}
	}
	return out
}

// ImplicitMatrix materializes f(Σ_t A^t) centrally — useful for validation
// and small-scale ground truth, and deliberately *not* part of the
// protocol (it is exactly the thing the protocol avoids).
func (c *Cluster) ImplicitMatrix(f Func) (*Matrix, error) {
	if c.locals == nil {
		return nil, errors.New("repro: SetLocalData before ImplicitMatrix")
	}
	return matrix.SumMats(c.locals).Apply(f.f.Apply), nil
}

// ProjectionError2 returns ‖A − AP‖_F² via the matrix Pythagorean theorem.
func ProjectionError2(A, P *Matrix) float64 { return matrix.ProjectionError2(A, P) }

// BestRankKError2 returns the optimum ‖A − [A]_k‖_F².
func BestRankKError2(A *Matrix, k int) float64 { return matrix.BestRankKError2(A, k) }

// RFFMap re-exports the random Fourier feature map construction for
// building kernel PCA pipelines on clusters.
type RFFMap = rff.Map

// NewRFFMap samples a Gaussian random Fourier feature map with d features
// for m-dimensional inputs and kernel bandwidth sigma.
func NewRFFMap(m, d int, sigma float64, seed int64) (*RFFMap, error) {
	return rff.NewMap(m, d, sigma, seed)
}

// ExpandRFF projects each server's local raw share through the feature map
// and folds in the phase shares, producing the local matrices for a
// Cosine() PCA.
func ExpandRFF(locals []*Matrix, mp *RFFMap) []*Matrix {
	return rff.DistributedExpand(locals, mp)
}
