package repro

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestTypedConstructionErrors pins the typed, wrapped error contract for
// bad inputs that used to panic: callers can match every failure mode
// with errors.Is.
func TestTypedConstructionErrors(t *testing.T) {
	if _, err := NewCluster(0); !errors.Is(err, ErrInvalidServers) {
		t.Fatalf("NewCluster(0): %v, want ErrInvalidServers", err)
	}
	if _, err := NewCluster(-3); !errors.Is(err, ErrInvalidServers) {
		t.Fatalf("NewCluster(-3): %v, want ErrInvalidServers", err)
	}
	if _, err := ListenCluster(1, "127.0.0.1:0"); !errors.Is(err, ErrInvalidServers) {
		t.Fatalf("ListenCluster(1): %v, want ErrInvalidServers", err)
	}

	c := mustCluster(t, 2)
	if _, err := c.PCA(context.Background(), Identity(), Options{K: 1}); !errors.Is(err, ErrNoData) {
		t.Fatalf("PCA without data: %v, want ErrNoData", err)
	}
	if err := c.SetLocalData([]*Matrix{NewMatrix(2, 3), NewMatrix(3, 3)}); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("mismatched shapes: %v, want ErrShapeMismatch", err)
	}

	rng := rand.New(rand.NewSource(1))
	M := lowRankMatrix(rng, 20, 4, 2, 0.1)
	if err := c.SetLocalData(splitMatrix(M, 2, rng)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PCA(context.Background(), Identity(), Options{K: 0}); !errors.Is(err, ErrInvalidRank) {
		t.Fatalf("K=0: %v, want ErrInvalidRank", err)
	}
	if _, err := c.PCA(context.Background(), Identity(), Options{K: -2}); !errors.Is(err, ErrInvalidRank) {
		t.Fatalf("K=-2: %v, want ErrInvalidRank", err)
	}
	if _, err := c.PCA(context.Background(), Identity(), Options{K: 1, Workers: -1}); !errors.Is(err, ErrInvalidWorkers) {
		t.Fatalf("Workers=-1: %v, want ErrInvalidWorkers", err)
	}
}

// TestPublicTCPClusterEndToEnd drives the public API over a loopback TCP
// cluster (workers as goroutines speaking the real wire protocol) and
// checks the result matches the in-process cluster bit for bit, with the
// byte ledger populated.
func TestPublicTCPClusterEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	M := lowRankMatrix(rng, 60, 8, 3, 0.2)
	const s = 3
	locals := splitMatrix(M, s, rand.New(rand.NewSource(9)))
	opts := Options{K: 3, Rows: 20, Seed: 11}

	mem := mustCluster(t, s)
	if err := mem.SetLocalData(locals); err != nil {
		t.Fatal(err)
	}
	memRes, err := mem.PCA(context.Background(), Identity(), opts)
	if err != nil {
		t.Fatal(err)
	}

	tcp, err := ListenCluster(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	for i := 1; i < s; i++ {
		go func() {
			if err := JoinWorker(testCtx(5*time.Second), tcp.Addr()); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	if err := tcp.AwaitWorkers(testCtx(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := tcp.SetLocalData(locals); err != nil {
		t.Fatal(err)
	}
	tcpRes, err := tcp.PCA(context.Background(), Identity(), opts)
	if err != nil {
		t.Fatal(err)
	}

	if memRes.Words != tcpRes.Words {
		t.Fatalf("words differ: mem %d, tcp %d", memRes.Words, tcpRes.Words)
	}
	if tcpRes.Bytes == 0 || tcpRes.Bytes != memRes.Bytes {
		t.Fatalf("byte ledgers differ: mem %d, tcp %d", memRes.Bytes, tcpRes.Bytes)
	}
	if !memRes.Projection.Equalf(tcpRes.Projection, 0) {
		t.Fatal("projection differs between transports")
	}
	// Per-run backend conversion is a mem-only convenience.
	if _, err := tcp.PCA(context.Background(), Identity(), Options{K: 2, Backend: BackendCSR}); !errors.Is(err, ErrTCPBackend) {
		t.Fatalf("backend conversion on TCP cluster: %v, want ErrTCPBackend", err)
	}
}
