package repro

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/matrix"
)

// mustCluster builds an in-process cluster or fails the test.
func mustCluster(t testing.TB, s int) *Cluster {
	t.Helper()
	c, err := NewCluster(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func splitMatrix(M *Matrix, s int, rng *rand.Rand) []*Matrix {
	n, d := M.Dims()
	out := make([]*Matrix, s)
	for t := range out {
		out[t] = NewMatrix(n, d)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			var acc float64
			for t := 0; t < s-1; t++ {
				sh := rng.NormFloat64() * 0.1
				out[t].Set(i, j, sh)
				acc += sh
			}
			out[s-1].Set(i, j, M.At(i, j)-acc)
		}
	}
	return out
}

func lowRankMatrix(rng *rand.Rand, n, d, rank int, noise float64) *Matrix {
	u := NewMatrix(n, rank)
	v := NewMatrix(d, rank)
	for i := range u.Data() {
		u.Data()[i] = rng.NormFloat64()
	}
	for i := range v.Data() {
		v.Data()[i] = rng.NormFloat64()
	}
	m := u.Mul(v.T())
	for i := range m.Data() {
		m.Data()[i] += noise * rng.NormFloat64()
	}
	return m
}

func TestClusterValidation(t *testing.T) {
	c := mustCluster(t, 3)
	if c.Servers() != 3 {
		t.Fatal("servers")
	}
	if err := c.SetLocalData([]*Matrix{NewMatrix(2, 2)}); err == nil {
		t.Fatal("wrong share count accepted")
	}
	if err := c.SetLocalData([]*Matrix{NewMatrix(2, 2), NewMatrix(2, 2), NewMatrix(3, 2)}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, err := c.PCA(context.Background(), Identity(), Options{K: 1}); err == nil {
		t.Fatal("PCA before SetLocalData accepted")
	}
	if _, err := c.ImplicitMatrix(Identity()); err == nil {
		t.Fatal("ImplicitMatrix before SetLocalData accepted")
	}
}

func TestPCAValidatesOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := mustCluster(t, 2)
	M := lowRankMatrix(rng, 30, 5, 2, 0.1)
	if err := c.SetLocalData(splitMatrix(M, 2, rng)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PCA(context.Background(), Identity(), Options{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestIdentityPCAErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	M := lowRankMatrix(rng, 300, 20, 4, 0.1)
	c := mustCluster(t, 3)
	if err := c.SetLocalData(splitMatrix(M, 3, rng)); err != nil {
		t.Fatal(err)
	}
	res, err := c.PCA(context.Background(), Identity(), Options{K: 4, Rows: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	A, _ := c.ImplicitMatrix(Identity())
	add := (ProjectionError2(A, res.Projection) - BestRankKError2(A, 4)) / A.FrobNorm2()
	if add > 0.15 {
		t.Fatalf("additive error %g", add)
	}
	if len(res.SampledRows) != 150 {
		t.Fatalf("sampled %d rows", len(res.SampledRows))
	}
	if res.Words <= 0 || len(res.Breakdown) == 0 {
		t.Fatal("communication accounting missing")
	}
}

func TestSoftmaxGMPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := 4
	n, d := 120, 12
	// Raw per-server matrices (e.g. per-hospital indicator records).
	raws := make([]*Matrix, s)
	for t2 := range raws {
		raws[t2] = lowRankMatrix(rng, n, d, 3, 0.1)
	}
	p := 8.0
	locals := make([]*Matrix, s)
	for t2, raw := range raws {
		locals[t2] = PrepareGM(raw, p, s)
	}
	c := mustCluster(t, s)
	if err := c.SetLocalData(locals); err != nil {
		t.Fatal(err)
	}
	res, err := c.PCA(context.Background(), SoftmaxGM(p), Options{K: 3, Rows: 150, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	A, _ := c.ImplicitMatrix(SoftmaxGM(p))
	// Ground truth: entrywise GM of the raw matrices.
	for trial := 0; trial < 20; trial++ {
		i, j := rng.Intn(n), rng.Intn(d)
		var sum float64
		for _, raw := range raws {
			sum += math.Pow(math.Abs(raw.At(i, j)), p)
		}
		want := math.Pow(sum/float64(s), 1/p)
		if math.Abs(A.At(i, j)-want) > 1e-9*(1+want) {
			t.Fatalf("implicit GM entry (%d,%d) = %g, want %g", i, j, A.At(i, j), want)
		}
	}
	add := (ProjectionError2(A, res.Projection) - BestRankKError2(A, 3)) / A.FrobNorm2()
	if add > 0.2 {
		t.Fatalf("GM additive error %g", add)
	}
}

func TestRobustHuberPCA(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	M := lowRankMatrix(rng, 200, 15, 4, 0.1)
	// Corrupt a few entries massively.
	for c := 0; c < 10; c++ {
		M.Set(rng.Intn(200), rng.Intn(15), 1e5)
	}
	c := mustCluster(t, 3)
	if err := c.SetLocalData(splitMatrix(M, 3, rng)); err != nil {
		t.Fatal(err)
	}
	f := Huber(10)
	res, err := c.PCA(context.Background(), f, Options{K: 4, Rows: 150, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	A, _ := c.ImplicitMatrix(f)
	if A.MaxAbs() > 10+1e-9 {
		t.Fatal("huber did not cap outliers")
	}
	add := (ProjectionError2(A, res.Projection) - BestRankKError2(A, 4)) / A.FrobNorm2()
	if add > 0.2 {
		t.Fatalf("robust additive error %g", add)
	}
}

func TestRFFCosinePipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, m := 150, 10
	raw := lowRankMatrix(rng, n, m, 3, 0.3)
	mp, err := NewRFFMap(m, 24, 2.0, 11)
	if err != nil {
		t.Fatal(err)
	}
	s := 3
	parts := splitMatrix(raw, s, rng)
	locals := ExpandRFF(parts, mp)
	c := mustCluster(t, s)
	if err := c.SetLocalData(locals); err != nil {
		t.Fatal(err)
	}
	res, err := c.PCA(context.Background(), Cosine(), Options{K: 5, Rows: 100, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	A, _ := c.ImplicitMatrix(Cosine())
	add := (ProjectionError2(A, res.Projection) - BestRankKError2(A, 5)) / A.FrobNorm2()
	if add > 0.2 {
		t.Fatalf("RFF additive error %g", add)
	}
	// The cosine path must use the uniform sampler (no z sketching tags).
	for tag := range res.Breakdown {
		if strings.HasPrefix(tag, "zest/") {
			t.Fatal("uniform pipeline ran the z-sampler")
		}
	}
}

func TestL1L2AndFair(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	M := lowRankMatrix(rng, 100, 8, 3, 0.1)
	for _, f := range []Func{L1L2(), Fair(2.0), AbsPower(0.5)} {
		c := mustCluster(t, 2)
		if err := c.SetLocalData(splitMatrix(M, 2, rng)); err != nil {
			t.Fatal(err)
		}
		res, err := c.PCA(context.Background(), f, Options{K: 3, Rows: 120, Seed: 17})
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		A, _ := c.ImplicitMatrix(f)
		add := (ProjectionError2(A, res.Projection) - BestRankKError2(A, 3)) / A.FrobNorm2()
		if add > 0.25 {
			t.Fatalf("%s: additive error %g", f.Name(), add)
		}
	}
}

func TestBoostOption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	M := lowRankMatrix(rng, 80, 8, 2, 0.4)
	c := mustCluster(t, 2)
	if err := c.SetLocalData(splitMatrix(M, 2, rng)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PCA(context.Background(), Identity(), Options{K: 2, Rows: 25, Boost: 3, Seed: 19}); err != nil {
		t.Fatal(err)
	}
}

func TestResetCommunication(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	M := lowRankMatrix(rng, 40, 5, 2, 0.1)
	c := mustCluster(t, 2)
	if err := c.SetLocalData(splitMatrix(M, 2, rng)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PCA(context.Background(), Identity(), Options{K: 2, Rows: 20}); err != nil {
		t.Fatal(err)
	}
	if c.Words() == 0 {
		t.Fatal("no words recorded")
	}
	c.ResetCommunication()
	if c.Words() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCustomFunc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	M := lowRankMatrix(rng, 60, 6, 2, 0.1)
	c := mustCluster(t, 2)
	if err := c.SetLocalData(splitMatrix(M, 2, rng)); err != nil {
		t.Fatal(err)
	}
	f := UniformRows(func(x float64) float64 { return x }, "passthrough")
	if f.Name() != "passthrough" {
		t.Fatal("custom name")
	}
	if _, err := c.PCA(context.Background(), f, Options{K: 2, Rows: 60, Seed: 21}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixReexports(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatal("FromRows")
	}
	var _ *matrix.Dense = m // Matrix must alias the internal type
}
