package repro

// Session-setup benchmarks: the fixed per-job session cost the session
// pool removes, isolated from protocol work. One op is the full lifecycle
// a pool miss pays — mint a session id, and on TCP the OpBindSession
// broadcast plus the OpEndSession/ack round-trip per worker — with zero
// protocol rounds in between. Compare against JobsThroughput* to see what
// fraction of a short job is setup. Regenerate with: make bench-json

import (
	"testing"
	"time"
)

// benchSessionSetup runs the bare bind/end lifecycle against an installed
// dataset, bypassing the pool so every iteration pays the miss path.
func benchSessionSetup(b *testing.B, c *Cluster) {
	b.Helper()
	if err := c.SetLocalData(benchShares(48, 7, 3, 5)); err != nil {
		b.Fatal(err)
	}
	c.mu.Lock()
	key := c.datasets[c.active].key
	c.mu.Unlock()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := c.net.NewSession()
		if err != nil {
			b.Fatal(err)
		}
		if c.coord != nil {
			if err := c.coord.OpenSession(sess.ID(), key); err != nil {
				b.Fatal(err)
			}
			c.coord.CloseSession(sess.ID())
		}
		sess.Close()
	}
}

// BenchmarkSessionSetupMem: session mint/close on the in-process
// transport (no control frames move — this is the id and state cost).
func BenchmarkSessionSetupMem(b *testing.B) {
	c, err := NewCluster(3)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	benchSessionSetup(b, c)
}

// BenchmarkSessionSetupTCP: the full miss-path handshake over real
// sockets — bind broadcast out, end/ack round-trip back per worker.
func BenchmarkSessionSetupTCP(b *testing.B) {
	const s = 3
	c, err := ListenCluster(s, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	for i := 1; i < s; i++ {
		go func() {
			if err := JoinWorker(testCtx(5*time.Second), c.Addr()); err != nil {
				b.Errorf("worker: %v", err)
			}
		}()
	}
	if err := c.AwaitWorkers(testCtx(10 * time.Second)); err != nil {
		b.Fatal(err)
	}
	benchSessionSetup(b, c)
}
