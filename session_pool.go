package repro

// This file is the session pool: the engine-side cache of bound comm
// sessions that removes the per-job fixed session cost. Before it, every
// job paid a full session lifecycle — mint a session id, ship an
// OpBindSession control frame to every worker, and on completion an
// OpEndSession/ack round-trip per worker — even when the next job ran
// against the very same dataset. The pool parks cleanly finished
// sessions per dataset key instead: a pool hit reuses a session whose
// worker-side runners and share bindings are already live, so it ships
// zero control frames and skips the share-residency check entirely.
//
// Correctness rests on two rules. First, only clean completions pool:
// a session is recycled (ledger zeroed, round/fork-stream counters
// restarted — see comm.Session.Recycle) only when its protocol run
// finished with every reply drained; errored or canceled jobs always
// take the full abort/end teardown, so a poisoned fabric or a stale
// queued frame can never leak into the next tenant. Second, pooling is
// transcript-invisible: bind/end are uncharged setup frames and a
// recycled session is observationally identical to a fresh one, so a
// job's words, bytes, tags, per-link order and projection are
// bit-identical whether it hit or missed the pool (pinned by
// sessionPoolDeterminismGate in session_pool_test.go).

import (
	"sync"
	"time"

	"repro/internal/comm"
)

// Session-pool bounds: at most sessionPoolMaxIdle sessions park per
// dataset key (each keeps a runner goroutine live on every worker), and
// a session idle longer than sessionPoolTTL is evicted with the full
// teardown handshake on the next pool operation.
const (
	sessionPoolMaxIdle = 16
	sessionPoolTTL     = 2 * time.Minute
)

// idleSession is one bound session parked between jobs.
type idleSession struct {
	sess  *comm.Session
	since time.Time
}

// sessionPool keeps cleanly finished, still-bound comm sessions parked
// per dataset key. Acquire/release are O(1) under one mutex; TTL
// eviction happens lazily on acquire so the hot path never scans.
type sessionPool struct {
	mu      sync.Mutex
	idle    map[uint64][]idleSession
	hits    int64
	misses  int64
	closed  bool
	ttl     time.Duration
	maxIdle int
	now     func() time.Time // seam for TTL-eviction tests
}

func newSessionPool() *sessionPool {
	return &sessionPool{
		idle:    make(map[uint64][]idleSession),
		ttl:     sessionPoolTTL,
		maxIdle: sessionPoolMaxIdle,
		now:     time.Now,
	}
}

// acquire pops the most recently parked session bound to key (nil means
// a miss: the caller mints and binds a fresh one) and returns any
// TTL-expired idle sessions for the caller to tear down. LIFO reuse
// keeps the freshest session hot and lets stale ones age toward the
// front of the queue, where the eviction sweep collects them.
func (p *sessionPool) acquire(key uint64) (s *comm.Session, expired []*comm.Session) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.misses++
		return nil, nil
	}
	q := p.idle[key]
	// TTL sweep first — an expired session is never handed out. Parked
	// sessions are time-ordered (appends at the back), so the sweep only
	// ever eats the front.
	cut := p.now().Add(-p.ttl)
	for len(q) > 0 && q[0].since.Before(cut) {
		expired = append(expired, q[0].sess)
		q = q[1:]
	}
	if k := len(q); k > 0 {
		s = q[k-1].sess
		q = q[:k-1]
	}
	if len(q) == 0 {
		delete(p.idle, key)
	} else {
		p.idle[key] = q
	}
	if s != nil {
		p.hits++
	} else {
		p.misses++
	}
	return s, expired
}

// release recycles a cleanly finished session and parks it for the next
// job on the same dataset. It reports false — leaving the full teardown
// to the caller — when the pool is closed, the per-key idle cap is
// reached, or the session refuses recycling (closed or poisoned by a
// failed round). After a true return the session belongs to the pool;
// the caller must not touch it again.
func (p *sessionPool) release(key uint64, s *comm.Session) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || len(p.idle[key]) >= p.maxIdle {
		return false
	}
	if !s.Recycle() {
		return false
	}
	p.idle[key] = append(p.idle[key], idleSession{sess: s, since: p.now()})
	return true
}

// purge retires every parked session without closing the pool — the
// failover path. A dead worker invalidates parked sessions' worker-side
// runner state, so the caller gives each the full teardown handshake
// (tolerated on the dead link, honored by the survivors) and the next
// jobs bind fresh sessions once the slot is re-placed.
func (p *sessionPool) purge() []*comm.Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*comm.Session
	for key, q := range p.idle {
		for _, e := range q {
			out = append(out, e.sess)
		}
		delete(p.idle, key)
	}
	return out
}

// drain closes the pool and returns every parked session for the caller
// to tear down; subsequent acquires miss and releases are refused.
func (p *sessionPool) drain() []*comm.Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	var out []*comm.Session
	for key, q := range p.idle {
		for _, e := range q {
			out = append(out, e.sess)
		}
		delete(p.idle, key)
	}
	return out
}

func (p *sessionPool) stats() SessionPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, q := range p.idle {
		n += len(q)
	}
	return SessionPoolStats{Hits: p.hits, Misses: p.misses, Idle: n}
}

// SessionPoolStats is a point-in-time snapshot of the cluster's session
// pool (see Cluster.SessionPoolStats).
type SessionPoolStats struct {
	// Hits counts jobs served by a parked bound session — each hit
	// skipped the session mint and, on TCP, the OpBindSession broadcast
	// and the OpEndSession/ack round-trip per worker.
	Hits int64
	// Misses counts jobs that minted and bound a fresh session (the
	// first job on a dataset, or any job arriving while the pool was
	// empty for its dataset).
	Misses int64
	// Idle is the number of sessions currently parked across all
	// datasets.
	Idle int
}

// SessionPoolStats snapshots the session pool's counters. Pooling is
// transcript-invisible — a job's result and communication ledger are
// bit-identical on a hit and a miss — so the counters are operational
// telemetry only (dlra-serve exposes them on /metrics).
func (c *Cluster) SessionPoolStats() SessionPoolStats { return c.pool.stats() }
