package repro

import (
	"fmt"
	"testing"
	"time"
)

// sessionPoolDeterminismGate is the session-pool acceptance gate: K
// identical fixed-seed queries served through a warm session pool (every
// measured job a pool hit) must be bit-identical — words, bytes, per-tag
// ledger, sampled rows and projection — to the same K queries on a fresh
// cluster. It mirrors appendDeterminismGate's structure: a reference
// cluster produces the expected fingerprints, a second cluster is warmed
// first and then measured, and the gate fails loudly if the measured
// path never actually exercised the pool.
func sessionPoolDeterminismGate(t *testing.T, newCluster func(t *testing.T) *Cluster, opts Options) {
	t.Helper()
	const (
		s, d, n = 3, 7, 48
		warmUps = 2 // jobs run only to park sessions in the pool
		K       = 3 // measured jobs
	)

	fresh := newCluster(t)
	defer fresh.Close()
	if err := fresh.SetLocalData(jobShares(91, n, d, s)); err != nil {
		t.Fatal(err)
	}
	want := make([]jobFingerprint, 0, K)
	for i := 0; i < K; i++ {
		res, err := fresh.PCA(testCtx(time.Minute), Huber(1.5), opts)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, fingerprintResult(res))
	}

	warm := newCluster(t)
	defer warm.Close()
	if err := warm.SetLocalData(jobShares(91, n, d, s)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < warmUps; i++ {
		if _, err := warm.PCA(testCtx(time.Minute), Huber(1.5), opts); err != nil {
			t.Fatal(err)
		}
	}
	if st := warm.SessionPoolStats(); st.Idle == 0 {
		t.Fatalf("warm-up parked no sessions: %+v", st)
	}
	base := warm.SessionPoolStats()

	got := make([]jobFingerprint, 0, K)
	for i := 0; i < K; i++ {
		res, err := warm.PCA(testCtx(time.Minute), Huber(1.5), opts)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, fingerprintResult(res))
	}
	for i := range want {
		mustMatchFingerprint(t, want[i], got[i], fmt.Sprintf("job %d: warm pool vs fresh cluster", i+1))
	}

	// The equality must have come from pooled sessions, not silent misses:
	// every measured job must have been a pool hit.
	st := warm.SessionPoolStats()
	if st.Hits-base.Hits < K {
		t.Fatalf("gate measured nothing: only %d of %d measured jobs hit the pool (%+v)", st.Hits-base.Hits, K, st)
	}
	if st.Misses != base.Misses {
		t.Fatalf("measured jobs missed the pool: %+v vs baseline %+v", st, base)
	}
}

// TestSessionPoolDeterminismGateMem runs the gate on in-process clusters
// under every storage backend.
func TestSessionPoolDeterminismGateMem(t *testing.T) {
	for _, bk := range []struct {
		name string
		b    Backend
	}{{"auto", BackendAuto}, {"dense", BackendDense}, {"csr", BackendCSR}, {"fast", BackendFast}} {
		t.Run(bk.name, func(t *testing.T) {
			sessionPoolDeterminismGate(t, func(t *testing.T) *Cluster {
				return mustCluster(t, 3)
			}, Options{K: 3, Rows: 12, Seed: 777, Backend: bk.b})
		})
	}
}

// TestSessionPoolDeterminismGateTCP runs the gate over real TCP worker
// fleets at the three canonical wire batch sizes (1 = batching off, 8 =
// flush every 8 frames, 0 = unbounded coalescing).
func TestSessionPoolDeterminismGateTCP(t *testing.T) {
	for _, batch := range []int{1, 8, 0} {
		t.Run(map[int]string{1: "batch1", 8: "batch8", 0: "batch0"}[batch], func(t *testing.T) {
			sessionPoolDeterminismGate(t, func(t *testing.T) *Cluster {
				return tcpCluster(t, 3)
			}, Options{K: 3, Rows: 12, Seed: 777, BatchSize: batch})
		})
	}
}

// TestSessionPoolTTLEviction pins the idle-eviction contract: a session
// parked longer than the TTL is torn down on the next acquire, never
// handed out. The pool's clock seam stands in for real waiting.
func TestSessionPoolTTLEviction(t *testing.T) {
	c := mustCluster(t, 3)
	defer c.Close()
	if err := c.SetLocalData(jobShares(5, 32, 6, 3)); err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 3, Rows: 12, Seed: 777}
	run := func() {
		t.Helper()
		if _, err := c.PCA(testCtx(time.Minute), Huber(1.5), opts); err != nil {
			t.Fatal(err)
		}
	}

	run()
	if st := c.SessionPoolStats(); st.Idle != 1 || st.Misses != 1 {
		t.Fatalf("first job should park one session after a miss: %+v", st)
	}
	run()
	if st := c.SessionPoolStats(); st.Hits != 1 || st.Idle != 1 {
		t.Fatalf("second job should reuse the parked session: %+v", st)
	}

	// Jump the pool's clock past the TTL: the parked session is now stale
	// and the next job must evict it and mint a fresh one.
	c.pool.mu.Lock()
	c.pool.now = func() time.Time { return time.Now().Add(sessionPoolTTL + time.Minute) }
	c.pool.mu.Unlock()

	base := c.SessionPoolStats()
	run()
	st := c.SessionPoolStats()
	if st.Hits != base.Hits {
		t.Fatalf("TTL-expired session was handed out: %+v", st)
	}
	if st.Misses != base.Misses+1 {
		t.Fatalf("post-expiry job should have missed: %+v (baseline %+v)", st, base)
	}
	if st.Idle != 1 {
		t.Fatalf("expired session still parked (or new one not parked): %+v", st)
	}
}
