package repro

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// TestSmokeEndToEnd drives the full public pipeline: a low-rank matrix is
// split across servers, the Huber PCA protocol runs, and the additive
// error bound of Theorem 1 must hold with a comfortable margin.
func TestSmokeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, d, rank, s := 400, 40, 5, 4
	// Low-rank + small noise matrix.
	U := matrix.NewDense(n, rank)
	V := matrix.NewDense(d, rank)
	for i := 0; i < n; i++ {
		for j := 0; j < rank; j++ {
			U.Set(i, j, rng.NormFloat64())
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < rank; j++ {
			V.Set(i, j, rng.NormFloat64())
		}
	}
	M := U.Mul(V.T())
	for i := 0; i < n; i++ {
		row := M.Row(i)
		for j := range row {
			row[j] += 0.05 * rng.NormFloat64()
		}
	}
	// Split additively across servers.
	locals := make([]*Matrix, s)
	for t2 := range locals {
		locals[t2] = matrix.NewDense(n, d)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			var acc float64
			for t2 := 0; t2 < s-1; t2++ {
				sh := rng.NormFloat64()
				locals[t2].Set(i, j, sh)
				acc += sh
			}
			locals[s-1].Set(i, j, M.At(i, j)-acc)
		}
	}

	c := mustCluster(t, s)
	if err := c.SetLocalData(locals); err != nil {
		t.Fatal(err)
	}
	f := Huber(1e6) // huge threshold ⇒ effectively identity, still z-sampled
	k := 5
	res, err := c.PCA(context.Background(), f, Options{K: k, Eps: 0.2, Rows: 120, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	A, err := c.ImplicitMatrix(f)
	if err != nil {
		t.Fatal(err)
	}
	got := ProjectionError2(A, res.Projection)
	opt := BestRankKError2(A, k)
	total := A.FrobNorm2()
	add := (got - opt) / total
	t.Logf("additive error = %.4g (opt %.4g, got %.4g, total %.4g), words = %d", add, opt, got, total, res.Words)
	if add > 0.25 {
		t.Fatalf("additive error %.4g exceeds bound", add)
	}
	if res.Words <= 0 {
		t.Fatal("no communication recorded")
	}
}
