package repro

import (
	"context"
	"time"
)

// testCtx returns a context that expires after d. The cancel func is
// driven by the timer instead of a per-site defer, so call sites stay as
// terse as the old duration parameters were.
func testCtx(d time.Duration) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	time.AfterFunc(d, cancel)
	return ctx
}
