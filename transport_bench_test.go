package repro

// Transport overhead benchmarks for the wire-level protocol stack: the
// identical PCA protocol run over the in-memory transport (frames encoded
// and decoded in process) and over a TCP-loopback cluster (frames crossing
// real sockets to worker goroutines speaking the dlra-worker wire
// protocol). The word ledgers are identical by construction — the
// difference is pure transport cost, which is exactly what BENCH_pr3.json
// records:
//
//	ns/op       — wall time per full protocol run
//	B/op        — allocations per run
//	wire_bytes  — encoded frame bytes per run (headers included)
//	words/run   — the paper-facing word ledger per run
//
// Regenerate with: make bench-json

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/comm"
)

// benchShares builds a deterministic additive partition for the transport
// benchmarks.
func benchShares(n, d, s int, seed int64) []*Matrix {
	rng := rand.New(rand.NewSource(seed))
	M := lowRankMatrix(rng, n, d, 4, 0.2)
	return splitMatrix(M, s, rng)
}

// runTransportPCA executes one full protocol run and reports the ledgers.
func runTransportPCA(b *testing.B, c *Cluster) {
	b.Helper()
	res, err := c.PCA(context.Background(), Identity(), Options{K: 4, Rows: 24, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Words), "words/run")
	b.ReportMetric(float64(res.Bytes), "wire_bytes")
	// The wire-batching configuration the run used (0 = unlimited per
	// pipelined sequence), so a perf snapshot pins down its transport
	// config alongside its numbers.
	b.ReportMetric(float64(c.net.BatchSize()), "batch_size")
}

func BenchmarkTransportPCAMem(b *testing.B) {
	const n, d, s = 96, 12, 3
	locals := benchShares(n, d, s, 5)
	c, err := NewCluster(s)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.SetLocalData(locals); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runTransportPCA(b, c)
	}
}

func BenchmarkTransportPCATCPLoopback(b *testing.B) {
	const n, d, s = 96, 12, 3
	locals := benchShares(n, d, s, 5)
	c, err := ListenCluster(s, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	for i := 1; i < s; i++ {
		go func() {
			if err := JoinWorker(testCtx(5*time.Second), c.Addr()); err != nil {
				b.Errorf("worker: %v", err)
			}
		}()
	}
	if err := c.AwaitWorkers(testCtx(10 * time.Second)); err != nil {
		b.Fatal(err)
	}
	if err := c.SetLocalData(locals); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runTransportPCA(b, c)
	}
}

// BenchmarkTransportFrameCodec isolates the codec layer: one sketch-sized
// payload encoded and decoded per op.
func BenchmarkTransportFrameCodec(b *testing.B) {
	payload := make([]float64, 5*128) // one 5×128 CountSketch counter block
	for i := range payload {
		payload[i] = float64(i) * 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frameCodecRoundTrip(b, payload)
	}
}

func frameCodecRoundTrip(b *testing.B, payload []float64) {
	f := &comm.Frame{Kind: comm.KindSketch, From: 1, To: 0, Tag: "bench/sketch", Words: comm.FloatWords(payload)}
	enc := comm.EncodeFrame(f)
	dec, err := comm.DecodeFrame(enc)
	comm.ReleaseFrame(enc)
	if err != nil {
		b.Fatal(err)
	}
	if len(dec.Words) != len(payload) {
		b.Fatal("codec payload mismatch")
	}
}
